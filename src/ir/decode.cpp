#include "ir/decode.hpp"

#include <unordered_map>

#include "common/check.hpp"
#include "ir/function.hpp"

namespace st::ir {

bool op_is_boundary(Op op) {
  switch (op) {
    case Op::Load:
    case Op::Store:
    case Op::NtLoad:
    case Op::NtStore:
    case Op::Alloc:
    case Op::Free:
    case Op::Call:
    case Op::Ret:
    case Op::AlPoint:
      return true;
    default:
      return false;
  }
}

namespace {

// Validates at decode time every register a pure instruction will touch, so
// the interpreter's fused loop can index the register file unchecked. The
// boundary ops keep their checks in the (cold) boundary dispatch.
void check_pure_operands(const Instr& ins, unsigned nregs) {
  const auto reg_ok = [nregs](Reg r) { return r < nregs; };
  switch (ins.op) {
    case Op::ConstI:
      ST_CHECK_MSG(reg_ok(ins.dst), "decode: register out of range");
      break;
    case Op::Mov:
    case Op::Gep:
      ST_CHECK_MSG(reg_ok(ins.dst) && reg_ok(ins.a),
                   "decode: register out of range");
      break;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::SDiv:
    case Op::SRem:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::LShr:
    case Op::CmpEq:
    case Op::CmpNe:
    case Op::CmpSLt:
    case Op::CmpSLe:
    case Op::CmpSGt:
    case Op::CmpSGe:
    case Op::CmpULt:
    case Op::GepIndex:
      ST_CHECK_MSG(reg_ok(ins.dst) && reg_ok(ins.a) && reg_ok(ins.b),
                   "decode: register out of range");
      break;
    case Op::CondBr:
      ST_CHECK_MSG(reg_ok(ins.a), "decode: register out of range");
      break;
    case Op::Br:
    case Op::Nop:
      break;
    default:
      ST_UNREACHABLE("boundary opcode in pure operand validation");
  }
}

}  // namespace

DecodedCode decode_function(const Function& f) {
  DecodedCode out;
  out.code.reserve(f.instr_count());
  out.block_start.reserve(f.blocks().size());
  std::unordered_map<const BasicBlock*, std::uint32_t> start;

  for (const auto& b : f.blocks()) {
    ST_CHECK_MSG(b->has_terminator(),
                 "decode: block would fall off the end of a basic block");
    const auto first = static_cast<std::uint32_t>(out.code.size());
    out.block_start.push_back(first);
    start.emplace(b.get(), first);
    for (const Instr& ins : b->instrs()) {
      DecodedInstr d;
      d.op = static_cast<DecOp>(ins.op);
      if (op_is_boundary(ins.op)) d.flags = DecodedInstr::kBoundary;
      d.dst = ins.dst;
      d.a = ins.a;
      d.b = ins.b;
      d.imm = ins.imm;
      if (d.is_boundary()) {
        DecodedExt e;
        e.acc_size = ins.acc_size;
        e.pc = ins.pc;
        e.alp_id = ins.alp_id;
        e.type = ins.type;
        e.callee = ins.callee;
        if (!ins.args.empty()) {
          e.args_begin = static_cast<std::uint32_t>(out.args.size());
          out.args.insert(out.args.end(), ins.args.begin(), ins.args.end());
          e.args_end = static_cast<std::uint32_t>(out.args.size());
        }
        d.t1 = static_cast<std::uint32_t>(out.ext.size());
        out.ext.push_back(e);
      } else {
        check_pure_operands(ins, f.num_regs());
      }
      out.code.push_back(d);
    }
  }

  // Second pass: resolve branch targets to code indices.
  std::size_t idx = 0;
  for (const auto& b : f.blocks()) {
    for (const Instr& ins : b->instrs()) {
      DecodedInstr& d = out.code[idx++];
      if (ins.op == Op::Br || ins.op == Op::CondBr) {
        auto it1 = start.find(ins.t1);
        ST_CHECK_MSG(it1 != start.end(), "decode: branch to foreign block");
        d.t1 = it1->second;
        if (ins.op == Op::CondBr) {
          auto it2 = start.find(ins.t2);
          ST_CHECK_MSG(it2 != start.end(), "decode: branch to foreign block");
          d.t2 = it2->second;
        }
      }
    }
  }

  // Third pass: imm fusion. ConstI b, imm immediately followed by a
  // cost-1 binary op reading b becomes one superinstruction that writes
  // both registers (the FunctionBuilder emits this pattern for every
  // literal operand). The absorbed binary op stays at k + 1, both for
  // direct jumps to it and for resuming there when the step budget
  // splits the pair mid-way.
  for (std::size_t k = 0; k + 1 < out.code.size(); ++k) {
    DecodedInstr& d = out.code[k];
    if (d.op != DecOp::ConstI) continue;
    const DecodedInstr& s = out.code[k + 1];
    if (s.b != d.dst || s.dst == kNoReg) continue;
    DecOp fused;
    switch (s.op) {
      case DecOp::Add: fused = DecOp::AddImm; break;
      case DecOp::Sub: fused = DecOp::SubImm; break;
      case DecOp::Mul: fused = DecOp::MulImm; break;
      case DecOp::And: fused = DecOp::AndImm; break;
      case DecOp::Or: fused = DecOp::OrImm; break;
      case DecOp::Xor: fused = DecOp::XorImm; break;
      case DecOp::Shl: fused = DecOp::ShlImm; break;
      case DecOp::LShr: fused = DecOp::LShrImm; break;
      case DecOp::CmpEq: fused = DecOp::CmpEqImm; break;
      case DecOp::CmpNe: fused = DecOp::CmpNeImm; break;
      case DecOp::CmpSLt: fused = DecOp::CmpSLtImm; break;
      case DecOp::CmpSLe: fused = DecOp::CmpSLeImm; break;
      case DecOp::CmpSGt: fused = DecOp::CmpSGtImm; break;
      case DecOp::CmpSGe: fused = DecOp::CmpSGeImm; break;
      case DecOp::CmpULt: fused = DecOp::CmpULtImm; break;
      default: continue;  // SDiv/SRem (cost differs), non-binary, boundary
    }
    // d keeps its own dst in b (the ConstI target) and takes the binary
    // op's dst/a; imm is already the literal.
    d.b = d.dst;
    d.dst = s.dst;
    d.a = s.a;
    d.op = fused;
    // Also absorb a Mov that copies the result out (FunctionBuilder's
    // assign() pattern); its destination register rides in t2.
    if (k + 2 < out.code.size()) {
      const DecodedInstr& mv = out.code[k + 2];
      if (mv.op == DecOp::Mov && mv.a == d.dst) {
        d.flags |= DecodedInstr::kFusedMov;
        d.t2 = mv.dst;
      }
    }
  }

  // Fourth pass: branch fusion. A pure non-branch instruction whose
  // block successor is a branch absorbs it: the branch's resolved
  // targets move into the instruction's free t1/t2 slots and the
  // interpreter retires both in one dispatch round. Cycle cost and
  // retired-instruction count are those of the separate pair, so every
  // counter the simulation reports is unchanged; pure instructions touch
  // only core-local state, so the coarser event granularity is invisible
  // to other cores. The absorbed branch is left in place for jumps that
  // enter the block mid-pair (it is then executed unfused, exactly as
  // before).
  for (std::size_t k = 0; k + 1 < out.code.size(); ++k) {
    DecodedInstr& d = out.code[k];
    if (d.is_boundary() || d.op == DecOp::Br || d.op == DecOp::CondBr ||
        d.op == DecOp::Nop) {
      continue;
    }
    // An imm-fused superinstruction's block successor lies past the
    // instructions it absorbed (binary op, plus a Mov when kFusedMov).
    std::size_t succ = k + 1;
    if (d.op > DecOp::Nop) {
      succ = k + ((d.flags & DecodedInstr::kFusedMov) != 0 ? 3 : 2);
    }
    if (succ >= out.code.size()) continue;
    const DecodedInstr& s = out.code[succ];
    // A pure non-branch instruction is never a block terminator, so
    // `succ` is still inside the same block.
    if (s.op == DecOp::Br) {
      d.flags |= DecodedInstr::kFusedBr;
      d.t1 = s.t1;
    } else if (s.op == DecOp::CondBr && s.a == d.dst &&
               (d.flags & DecodedInstr::kFusedMov) == 0) {
      // The branch tests the value this instruction just wrote, so the
      // fused form can read it back from the register file. kFusedMov
      // already owns t2, so it only composes with the one-target Br.
      d.flags |= DecodedInstr::kFusedCondBr;
      d.t1 = s.t1;
      d.t2 = s.t2;
    }
  }
  return out;
}

}  // namespace st::ir
