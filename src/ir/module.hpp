// TxIR module: owns types and functions, assigns program counters.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace st::ir {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Interns a struct/array type; the module owns it.
  const StructType* add_type(StructType t);
  const StructType* find_type(std::string_view name) const;

  Function* add_function(std::string name,
                         std::vector<const StructType*> param_pointees);
  Function* find_function(std::string_view name) const;

  const std::deque<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  /// Marks a function as the body of a source-level atomic block. Atomic
  /// block ids are dense from 0 in registration order.
  unsigned add_atomic_block(Function* f);
  const std::vector<Function*>& atomic_blocks() const { return atomic_blocks_; }

  /// Assigns a unique PC to every instruction (the "binary layout"). Must
  /// run after instrumentation and before anchor-table emission/execution.
  void finalize();
  bool finalized() const { return finalized_; }

  /// PC -> instruction, valid after finalize().
  const Instr* instr_at(std::uint32_t pc) const;
  std::uint32_t max_pc() const { return next_pc_; }

 private:
  std::deque<std::unique_ptr<StructType>> types_;
  std::deque<std::unique_ptr<Function>> functions_;
  std::vector<Function*> atomic_blocks_;
  std::unordered_map<std::uint32_t, const Instr*> pc_map_;
  std::uint32_t next_pc_ = 0;
  bool finalized_ = false;
};

}  // namespace st::ir
