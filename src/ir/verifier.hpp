// Structural well-formedness checks for TxIR.
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace st::ir {

/// Returns the list of problems found (empty = valid).
std::vector<std::string> verify_function(const Function& f);
std::vector<std::string> verify_module(const Module& m);

/// Aborts the process with diagnostics if the module is malformed.
void verify_or_die(const Module& m);

}  // namespace st::ir
