#include "ir/printer.hpp"

#include <sstream>

namespace st::ir {

namespace {
std::string reg_name(Reg r) {
  return r == kNoReg ? std::string("_") : "%" + std::to_string(r);
}
}  // namespace

std::string print_instr(const Instr& ins) {
  std::ostringstream os;
  if (ins.dst != kNoReg) os << reg_name(ins.dst) << " = ";
  os << op_name(ins.op);
  switch (ins.op) {
    case Op::ConstI:
      os << " " << ins.imm;
      break;
    case Op::Gep:
      os << " " << reg_name(ins.a) << ", " << ins.type->name << "."
         << ins.type->fields[ins.field].name;
      break;
    case Op::GepIndex:
      os << " " << reg_name(ins.a) << "[" << reg_name(ins.b) << "] x"
         << ins.imm;
      break;
    case Op::Load:
    case Op::NtLoad:
      os << unsigned(ins.acc_size) << " [" << reg_name(ins.a) << "]";
      if (ins.type) os << " ; ->" << ins.type->name;
      break;
    case Op::Store:
    case Op::NtStore:
      os << unsigned(ins.acc_size) << " [" << reg_name(ins.a) << "], "
         << reg_name(ins.b);
      break;
    case Op::Alloc:
      os << " " << ins.type->name;
      break;
    case Op::Br:
      os << " " << ins.t1->name();
      break;
    case Op::CondBr:
      os << " " << reg_name(ins.a) << ", " << ins.t1->name() << ", "
         << ins.t2->name();
      break;
    case Op::Call: {
      os << " @" << ins.callee->name() << "(";
      for (std::size_t i = 0; i < ins.args.size(); ++i)
        os << (i ? ", " : "") << reg_name(ins.args[i]);
      os << ")";
      break;
    }
    case Op::Ret:
      if (ins.a != kNoReg) os << " " << reg_name(ins.a);
      break;
    case Op::AlPoint:
      os << " #" << ins.alp_id << ", " << reg_name(ins.a);
      break;
    case Op::Free:
      os << " [" << reg_name(ins.a) << "]";
      break;
    default:
      if (ins.a != kNoReg) os << " " << reg_name(ins.a);
      if (ins.b != kNoReg) os << ", " << reg_name(ins.b);
      break;
  }
  if (ins.pc != 0) os << "  ; pc=" << ins.pc;
  return os.str();
}

std::string print_function(const Function& f) {
  std::ostringstream os;
  os << "func @" << f.name() << "(";
  for (unsigned i = 0; i < f.num_params(); ++i) {
    os << (i ? ", " : "") << "%" << i;
    if (const StructType* p = f.param_pointee(i)) os << ": *" << p->name;
  }
  os << ") {\n";
  for (const auto& b : f.blocks()) {
    os << b->name() << ":\n";
    for (const auto& ins : b->instrs()) os << "  " << print_instr(ins) << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string print_module(const Module& m) {
  std::ostringstream os;
  for (const auto& f : m.functions()) os << print_function(*f) << "\n";
  return os.str();
}

}  // namespace st::ir
