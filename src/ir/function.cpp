#include "ir/function.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace st::ir {

const Instr& BasicBlock::terminator() const {
  ST_CHECK_MSG(has_terminator(), "block has no terminator");
  return instrs_.back();
}

bool BasicBlock::has_terminator() const {
  return !instrs_.empty() && instrs_.back().is_terminator();
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  if (!has_terminator()) return {};
  const Instr& t = instrs_.back();
  switch (t.op) {
    case Op::Br: return {t.t1};
    case Op::CondBr: return {t.t1, t.t2};
    default: return {};
  }
}

Function::Function(std::string name, unsigned id,
                   std::vector<const StructType*> param_pointees)
    : name_(std::move(name)),
      id_(id),
      param_pointees_(std::move(param_pointees)),
      next_reg_(static_cast<unsigned>(param_pointees_.size())) {}

BasicBlock* Function::add_block(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(
      this, std::move(name), static_cast<unsigned>(blocks_.size())));
  rpo_valid_ = false;
  invalidate_decoded();
  return blocks_.back().get();
}

const DecodedCode& Function::decoded() const {
  if (!decoded_) decoded_ = std::make_unique<DecodedCode>(decode_function(*this));
  return *decoded_;
}

SuperblockCache& Function::jit_cache() const {
  if (!jit_) jit_ = std::make_unique<SuperblockCache>(decoded().code.size());
  return *jit_;
}

Reg Function::fresh_reg() {
  ST_CHECK_MSG(next_reg_ < kNoReg - 1, "register space exhausted");
  return static_cast<Reg>(next_reg_++);
}

Reg Function::param_reg(unsigned i) const {
  ST_CHECK(i < param_pointees_.size());
  return static_cast<Reg>(i);
}

const std::vector<BasicBlock*>& Function::rpo() const {
  if (rpo_valid_) return rpo_cache_;
  rpo_cache_.clear();
  if (blocks_.empty()) {
    rpo_valid_ = true;
    return rpo_cache_;
  }
  // Iterative post-order DFS, then reverse.
  std::unordered_set<const BasicBlock*> visited;
  std::vector<std::pair<BasicBlock*, unsigned>> stack;
  BasicBlock* e = blocks_.front().get();
  stack.emplace_back(e, 0);
  visited.insert(e);
  std::vector<BasicBlock*> post;
  while (!stack.empty()) {
    auto& [bb, idx] = stack.back();
    auto succs = bb->successors();
    if (idx < succs.size()) {
      BasicBlock* s = succs[idx++];
      if (visited.insert(s).second) stack.emplace_back(s, 0);
    } else {
      post.push_back(bb);
      stack.pop_back();
    }
  }
  rpo_cache_.assign(post.rbegin(), post.rend());
  rpo_valid_ = true;
  return rpo_cache_;
}

unsigned Function::instr_count() const {
  unsigned n = 0;
  for (const auto& b : blocks_) n += static_cast<unsigned>(b->instrs().size());
  return n;
}

}  // namespace st::ir
