// TxIR type system: C-like structs with named fields, where pointer-typed
// fields carry their pointee type. This is exactly the information Data
// Structure Analysis needs for field-sensitive points-to graphs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace st::ir {

struct StructType;

struct Field {
  std::string name;
  unsigned offset = 0;  // byte offset within the struct
  std::uint8_t size = 8;
  /// Non-null when the field holds a pointer to a struct (possibly itself).
  const StructType* pointee = nullptr;
};

/// A program-level object type: either a record with named fields or an
/// array of homogeneous elements (arrays are field-insensitive in DSA, so a
/// single sentinel field index represents "some element").
struct StructType {
  std::string name;
  std::vector<Field> fields;
  unsigned size = 0;  // total bytes (padded to 8)

  bool is_array = false;
  unsigned elem_size = 0;
  const StructType* elem_pointee = nullptr;
  unsigned elem_count = 0;

  /// Field index used by GepIndex (array element access) in anchor tables
  /// and DSA edges.
  static constexpr unsigned kArrayField = 0xFFFF;

  unsigned field_index(std::string_view fname) const;
  const Field& field(unsigned idx) const;
};

/// Builder helper: define a record type. Offsets are assigned sequentially
/// with natural alignment.
StructType make_struct(std::string name,
                       std::vector<Field> fields_without_offsets);

/// Builder helper: define an array type of `count` elements of `elem_size`
/// bytes; `elem_pointee` is non-null when elements are pointers to structs.
StructType make_array(std::string name, unsigned elem_size,
                      unsigned count, const StructType* elem_pointee);

}  // namespace st::ir
