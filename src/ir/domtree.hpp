// Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
//
// Algorithm 1 of the paper classifies loads/stores as anchors by a
// depth-first walk of the dominator tree; the anchor pass also needs an
// instruction-level dominance query.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace st::ir {

class DomTree {
 public:
  explicit DomTree(const Function& f);

  /// Immediate dominator (null for the entry block / unreachable blocks).
  const BasicBlock* idom(const BasicBlock* b) const;

  /// Block-level dominance (a block dominates itself). Unreachable blocks
  /// dominate nothing and are dominated by nothing.
  bool dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// Instruction-level dominance: true when `a` executes before `b` on every
  /// path reaching `b` (same block: program order; otherwise block
  /// dominance). `ai`/`bi` are the indices of the instructions within their
  /// blocks.
  bool dominates(const BasicBlock* a_bb, std::size_t ai,
                 const BasicBlock* b_bb, std::size_t bi) const;

  /// Children in the dominator tree (for DFS traversals).
  const std::vector<const BasicBlock*>& children(const BasicBlock* b) const;

  /// Dominator-tree preorder starting at the entry.
  std::vector<const BasicBlock*> dfs_preorder() const;

 private:
  struct Node {
    const BasicBlock* bb = nullptr;
    int idom = -1;            // index into rpo order
    std::vector<const BasicBlock*> children;
    // Preorder interval for O(1) dominance queries.
    unsigned tin = 0, tout = 0;
  };
  int index_of(const BasicBlock* b) const;

  const Function& f_;
  std::vector<const BasicBlock*> rpo_;
  std::unordered_map<const BasicBlock*, int> index_;
  std::vector<Node> nodes_;
  std::vector<const BasicBlock*> no_children_;
};

}  // namespace st::ir
