#include "ir/callgraph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace st::ir {

CallGraph::CallGraph(const Module& m) : m_(m) {
  for (const auto& f : m.functions()) {
    auto& out = callees_[f.get()];
    std::unordered_set<const Function*> seen;
    for (const auto& b : f->blocks())
      for (const auto& ins : b->instrs())
        if (ins.op == Op::Call && seen.insert(ins.callee).second)
          out.push_back(ins.callee);
  }
  // Cycle detection via coloring.
  std::unordered_map<const Function*, int> color;  // 0 white 1 grey 2 black
  for (const auto& f : m.functions()) {
    if (color[f.get()] != 0) continue;
    std::vector<std::pair<const Function*, std::size_t>> stack{{f.get(), 0}};
    color[f.get()] = 1;
    while (!stack.empty()) {
      auto& [fn, i] = stack.back();
      const auto& cs = callees_[fn];
      if (i < cs.size()) {
        const Function* c = cs[i++];
        const int col = color[c];
        if (col == 1) has_cycle_ = true;
        if (col == 0) {
          color[c] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        color[fn] = 2;
        stack.pop_back();
      }
    }
  }
}

const std::vector<const Function*>& CallGraph::callees(
    const Function* f) const {
  auto it = callees_.find(f);
  return it == callees_.end() ? empty_ : it->second;
}

std::vector<const Instr*> CallGraph::call_sites(const Function* f) const {
  std::vector<const Instr*> out;
  for (const auto& b : f->blocks())
    for (const auto& ins : b->instrs())
      if (ins.op == Op::Call) out.push_back(&ins);
  return out;
}

std::vector<const Function*> CallGraph::reachable_from(
    const Function* root) const {
  std::vector<const Function*> out;
  std::unordered_set<const Function*> seen{root};
  std::vector<const Function*> stack{root};
  while (!stack.empty()) {
    const Function* f = stack.back();
    stack.pop_back();
    out.push_back(f);
    for (const Function* c : callees(f))
      if (seen.insert(c).second) stack.push_back(c);
  }
  return out;
}

std::vector<const Function*> CallGraph::bottom_up_order() const {
  ST_CHECK_MSG(!has_cycle_, "recursive atomic blocks are not supported");
  std::vector<const Function*> out;
  std::unordered_set<const Function*> done;
  // Repeated passes: emit any function whose callees are all emitted.
  // O(n^2) worst case but module sizes are tiny.
  const std::size_t total = m_.functions().size();
  while (out.size() < total) {
    bool progressed = false;
    for (const auto& f : m_.functions()) {
      if (done.count(f.get())) continue;
      const auto& cs = callees(f.get());
      const bool ready = std::all_of(cs.begin(), cs.end(), [&](auto* c) {
        return done.count(c) != 0;
      });
      if (ready) {
        out.push_back(f.get());
        done.insert(f.get());
        progressed = true;
      }
    }
    ST_CHECK_MSG(progressed, "call graph cycle");
  }
  return out;
}

}  // namespace st::ir
