#include "ir/module.hpp"

#include "common/check.hpp"

namespace st::ir {

const StructType* Module::add_type(StructType t) {
  ST_CHECK_MSG(find_type(t.name) == nullptr, "duplicate type name");
  types_.push_back(std::make_unique<StructType>(std::move(t)));
  return types_.back().get();
}

const StructType* Module::find_type(std::string_view name) const {
  for (const auto& t : types_)
    if (t->name == name) return t.get();
  return nullptr;
}

Function* Module::add_function(std::string name,
                               std::vector<const StructType*> param_pointees) {
  ST_CHECK_MSG(find_function(name) == nullptr, "duplicate function name");
  functions_.push_back(std::make_unique<Function>(
      std::move(name), static_cast<unsigned>(functions_.size()),
      std::move(param_pointees)));
  return functions_.back().get();
}

Function* Module::find_function(std::string_view name) const {
  for (const auto& f : functions_)
    if (f->name() == name) return f.get();
  return nullptr;
}

unsigned Module::add_atomic_block(Function* f) {
  ST_CHECK(f != nullptr);
  atomic_blocks_.push_back(f);
  return static_cast<unsigned>(atomic_blocks_.size() - 1);
}

void Module::finalize() {
  ST_CHECK_MSG(!finalized_, "module already finalized");
  // PC 0 is reserved (it reads as "no PC" in abort info).
  next_pc_ = 1;
  pc_map_.clear();
  for (auto& f : functions_) {
    for (auto& b : f->blocks()) {
      for (auto& ins : b->instrs()) {
        ins.pc = next_pc_++;
        pc_map_.emplace(ins.pc, &ins);
      }
    }
    // Instrumentation and PC assignment are done; anything decoded before
    // this point (e.g. by a unit test) is stale now.
    f->invalidate_decoded();
  }
  finalized_ = true;
}

const Instr* Module::instr_at(std::uint32_t pc) const {
  auto it = pc_map_.find(pc);
  return it == pc_map_.end() ? nullptr : it->second;
}

}  // namespace st::ir
