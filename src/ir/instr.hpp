// TxIR instruction set.
//
// A register machine (registers are assignable, not SSA) over 64-bit values.
// Memory is the simulated heap; loads and stores are the objects of the
// whole analysis, so they carry access size and (for pointer-producing
// loads) the pointee type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace st::ir {

class BasicBlock;
class Function;

using Reg = std::uint16_t;
inline constexpr Reg kNoReg = 0xFFFF;

enum class Op : std::uint8_t {
  // Values.
  ConstI,  // dst = imm
  Mov,     // dst = a
  Add, Sub, Mul, SDiv, SRem,  // dst = a <op> b (signed where it matters)
  And, Or, Xor, Shl, LShr,
  CmpEq, CmpNe, CmpSLt, CmpSLe, CmpSGt, CmpSGe, CmpULt,  // dst = a <op> b ? 1 : 0

  // Addressing.
  Gep,       // dst = a + offset(type, field)        — record field address
  GepIndex,  // dst = a + b * type->elem_size        — array element address

  // Memory.
  Load,     // dst = mem[a], acc_size bytes
  Store,    // mem[a] = b
  NtLoad,   // nontransactional variants (§4)
  NtStore,
  Alloc,    // dst = new object of `type` (rolled back on abort)
  Free,     // free mem[a]'s block (deferred to commit)

  // Control flow.
  Br,      // goto t1
  CondBr,  // if a goto t1 else t2
  Call,    // dst = callee(args...)
  Ret,     // return a (or nothing when a == kNoReg)

  // Instrumentation (inserted by the staggered-transactions pass).
  AlPoint,  // advisory locking point: (alp_id, data address in a)

  Nop,
};

const char* op_name(Op op);
bool op_is_terminator(Op op);
bool op_is_mem_access(Op op);  // Load/Store/NtLoad/NtStore

struct Instr {
  Op op = Op::Nop;
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  std::int64_t imm = 0;

  const StructType* type = nullptr;  // Gep/GepIndex/Alloc; Load: pointee of result
  std::uint16_t field = 0;           // Gep field index; kArrayField for GepIndex
  std::uint8_t acc_size = 8;         // Load/Store/NtLoad/NtStore

  Function* callee = nullptr;
  std::vector<Reg> args;

  BasicBlock* t1 = nullptr;
  BasicBlock* t2 = nullptr;

  std::uint32_t pc = 0;       // assigned by Module::finalize()
  std::uint32_t alp_id = 0;   // AlPoint only

  bool is_terminator() const { return op_is_terminator(op); }
  bool is_mem_access() const { return op_is_mem_access(op); }
};

}  // namespace st::ir
