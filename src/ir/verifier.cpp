#include "ir/verifier.hpp"

#include <cstdio>
#include <unordered_set>

namespace st::ir {

namespace {
bool valid_size(std::uint8_t s) {
  return s == 1 || s == 2 || s == 4 || s == 8;
}
}  // namespace

std::vector<std::string> verify_function(const Function& f) {
  std::vector<std::string> errs;
  auto err = [&](const std::string& s) { errs.push_back(f.name() + ": " + s); };

  if (f.blocks().empty()) {
    err("function has no blocks");
    return errs;
  }
  std::unordered_set<const BasicBlock*> owned;
  for (const auto& b : f.blocks()) owned.insert(b.get());

  const unsigned nregs = f.num_regs();
  for (const auto& b : f.blocks()) {
    if (!b->has_terminator()) err("block " + b->name() + " lacks a terminator");
    const auto& ins = b->instrs();
    for (auto it = ins.begin(); it != ins.end(); ++it) {
      const Instr& x = *it;
      if (x.is_terminator() && std::next(it) != ins.end())
        err("terminator mid-block in " + b->name());
      auto reg_ok = [&](Reg r) { return r == kNoReg || r < nregs; };
      if (!reg_ok(x.dst) || !reg_ok(x.a) || !reg_ok(x.b))
        err("register out of range in " + b->name());
      switch (x.op) {
        case Op::Br:
          if (!x.t1 || !owned.count(x.t1)) err("br to foreign block");
          break;
        case Op::CondBr:
          if (!x.t1 || !x.t2 || !owned.count(x.t1) || !owned.count(x.t2))
            err("cond_br to foreign block");
          if (x.a == kNoReg) err("cond_br without condition");
          break;
        case Op::Call:
          if (!x.callee)
            err("call without callee");
          else {
            if (x.args.size() != x.callee->num_params())
              err("call arity mismatch to " + x.callee->name());
            // Independent of arity: the interpreter copies argument i into
            // callee register i, so this is the memory-safety bound.
            if (x.args.size() > x.callee->num_regs())
              err("call passes more arguments than " + x.callee->name() +
                  " has registers");
          }
          for (Reg r : x.args)
            if (r >= nregs) err("call argument register out of range");
          break;
        case Op::Load:
        case Op::NtLoad:
          if (!valid_size(x.acc_size)) err("bad load size");
          if (x.a == kNoReg || x.dst == kNoReg) err("malformed load");
          break;
        case Op::Store:
        case Op::NtStore:
          if (!valid_size(x.acc_size)) err("bad store size");
          if (x.a == kNoReg || x.b == kNoReg) err("malformed store");
          break;
        case Op::Gep:
          if (!x.type || x.type->is_array || x.field >= x.type->fields.size())
            err("malformed gep");
          break;
        case Op::GepIndex:
          if (!x.type || !x.type->is_array) err("malformed gep.idx");
          break;
        case Op::Alloc:
          if (!x.type || x.dst == kNoReg) err("malformed alloc");
          break;
        case Op::AlPoint:
          if (x.a == kNoReg) err("alpoint without data address");
          break;
        default:
          break;
      }
    }
  }
  return errs;
}

std::vector<std::string> verify_module(const Module& m) {
  std::vector<std::string> errs;
  for (const auto& f : m.functions()) {
    auto e = verify_function(*f);
    errs.insert(errs.end(), e.begin(), e.end());
  }
  return errs;
}

void verify_or_die(const Module& m) {
  const auto errs = verify_module(m);
  if (errs.empty()) return;
  for (const auto& e : errs) std::fprintf(stderr, "IR verify: %s\n", e.c_str());
  std::abort();
}

}  // namespace st::ir
