// TxIR basic blocks and functions.
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/decode.hpp"
#include "ir/instr.hpp"
#include "ir/superblock.hpp"

namespace st::ir {

class Function;

class BasicBlock {
 public:
  BasicBlock(Function* parent, std::string name, unsigned id)
      : parent_(parent), name_(std::move(name)), id_(id) {}

  Function* parent() const { return parent_; }
  const std::string& name() const { return name_; }
  unsigned id() const { return id_; }

  /// Instructions are stored in a list so that instrumentation passes can
  /// insert in the middle without invalidating Instr* held by analyses.
  std::list<Instr>& instrs() { return instrs_; }
  const std::list<Instr>& instrs() const { return instrs_; }

  const Instr& terminator() const;
  bool has_terminator() const;

  /// Successor blocks from the terminator (0, 1 or 2).
  std::vector<BasicBlock*> successors() const;

 private:
  Function* parent_;
  std::string name_;
  unsigned id_;
  std::list<Instr> instrs_;
};

class Function {
 public:
  /// `param_pointees[i]` is non-null when parameter i is a pointer to that
  /// struct type (this is the signature information DSA consumes).
  Function(std::string name, unsigned id,
           std::vector<const StructType*> param_pointees);

  const std::string& name() const { return name_; }
  unsigned id() const { return id_; }
  unsigned num_params() const {
    return static_cast<unsigned>(param_pointees_.size());
  }
  const StructType* param_pointee(unsigned i) const {
    return param_pointees_[i];
  }

  BasicBlock* add_block(std::string name);
  BasicBlock* entry() { return blocks_.empty() ? nullptr : blocks_.front().get(); }
  const BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }

  std::deque<std::unique_ptr<BasicBlock>>& blocks() { return blocks_; }
  const std::deque<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }

  Reg fresh_reg();
  unsigned num_regs() const { return next_reg_; }
  /// Parameter i occupies register i.
  Reg param_reg(unsigned i) const;

  /// Blocks in reverse post-order from the entry (unreachable blocks are
  /// excluded). Cached; invalidated by add_block.
  const std::vector<BasicBlock*>& rpo() const;

  unsigned instr_count() const;

  /// Pre-decoded flat code (see ir/decode.hpp), built lazily on first use
  /// and cached. add_block and Module::finalize (which assigns PCs)
  /// invalidate it; passes that splice instructions into existing blocks
  /// must finish before the first execution — the compile pipeline
  /// guarantees this by finalizing last.
  const DecodedCode& decoded() const;
  void invalidate_decoded() const {
    decoded_.reset();
    jit_.reset();  // traces index the decoded layout; never outlive it
  }

  /// Per-function superblock trace cache (ir/superblock.hpp): step-entry
  /// profile counters plus installed traces over the current decoded()
  /// layout. Built lazily by the first JIT-enabled interpreter; dropped
  /// together with decoded() whenever the code changes, so a stale trace
  /// can never execute.
  SuperblockCache& jit_cache() const;

 private:
  std::string name_;
  unsigned id_;
  std::vector<const StructType*> param_pointees_;
  std::deque<std::unique_ptr<BasicBlock>> blocks_;
  unsigned next_reg_;
  mutable std::vector<BasicBlock*> rpo_cache_;
  mutable bool rpo_valid_ = false;
  mutable std::unique_ptr<DecodedCode> decoded_;
  mutable std::unique_ptr<SuperblockCache> jit_;
};

}  // namespace st::ir
