// TL2-style software transactional memory tier (DESIGN.md §16).
//
// A global-version-clock STM in the Dice/Shalev/Shavit "Transactional
// Locking II" lineage, used by the transaction executor as a middle
// fallback tier between HTM retries and the irrevocable global lock:
// transactions that exhaust their hardware retries serialize only against
// real conflicts (per-orec versioned write-locks) instead of against every
// other core.
//
// Layout: one 8-byte global version clock plus a hash-indexed table of
// STAGTM_STM_ORECS ownership records (orecs), all allocated line-aligned
// from the heap's setup arena and accessed through the simulated memory
// system — orec reads, lock CASes, the clock bump, and the redo-log
// writeback are real coherent accesses with real latencies, performed only
// at synchronizing steps so the deterministic serial and parallel engines
// stay bit-identical at any STAGTM_THREADS (the determinism argument is in
// DESIGN.md §16).
//
// Orec encoding: an unlocked orec holds `version << 1`; a locked orec holds
// `(saved_version << 1) | 1`. The owner and saved version are tracked
// host-side (per-core held list) — the simulated word carries exactly what
// real TL2 metadata would, and the lock bit is what hardware transactions
// inspect at commit (subscription-style coexistence, see htm_commit notes
// in runtime/tx_executor.cpp).
//
// Per-transaction state: a read set of (orec index, observed version)
// pairs and a deferred-write redo log of byte-masked 8-byte chunks, each
// summarized by a 64-bit Bloom filter for fast membership (the exact
// structures resolve Bloom false positives). Commit acquires write-set
// orecs in sorted index order (bounded spin, timestamp-based abort), then
// in one atomic step validates the read set, bumps the clock, drains the
// redo log with plain stores (eager requester-wins coherence aborts any
// hardware transaction holding those lines speculatively — the STM commit
// wins, like any other committed store), and releases the orecs at the new
// write version.
//
// Knobs (strict contract, see common/env.hpp):
//   STAGTM_STM=on|off        enable the tier (default off — the executor
//                            falls straight from HTM retries to the glock,
//                            byte-identical to builds without this file)
//   STAGTM_STM_RETRIES=<n>   STM attempts before the glock (default 8)
//   STAGTM_STM_ORECS=<n>     orec-table size, power of two (default 4096)
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "htm/htm.hpp"

namespace st::stm {

using sim::Addr;
using sim::CoreId;
using sim::Cycle;

struct StmConfig {
  bool enabled = false;
  unsigned retries = 8;   // STM attempts before the glock
  unsigned orecs = 4096;  // power of two

  /// Reads STAGTM_STM / STAGTM_STM_RETRIES / STAGTM_STM_ORECS; exits 2 on
  /// malformed values. Parsed fresh on each call (no latch) so tests can
  /// exercise the validation.
  static StmConfig from_env();
};

// ---- orec word encoding ----------------------------------------------------
inline constexpr std::uint64_t orec_word(std::uint64_t version, bool locked) {
  return (version << 1) | (locked ? 1u : 0u);
}
inline constexpr bool orec_locked(std::uint64_t w) { return (w & 1) != 0; }
inline constexpr std::uint64_t orec_version(std::uint64_t w) { return w >> 1; }

/// 64-bit two-hash Bloom filter summarizing a small set of 32-bit keys.
/// False positives only (a clear bit proves absence); callers fall back to
/// the exact structure on a maybe.
struct Bloom64 {
  std::uint64_t bits = 0;
  void add(std::uint32_t key) { bits |= mask(key); }
  bool maybe(std::uint32_t key) const {
    const std::uint64_t m = mask(key);
    return (bits & m) == m;
  }
  void clear() { bits = 0; }
  static std::uint64_t mask(std::uint32_t key) {
    const std::uint64_t h = mix64(key + 1);
    return (std::uint64_t{1} << (h & 63)) |
           (std::uint64_t{1} << ((h >> 8) & 63));
  }
};

class StmSystem {
 public:
  /// `clock_addr` and `orec_base` must be line-aligned, zero-initialized
  /// allocations of 8 and cfg.orecs*8 bytes from the setup arena (the
  /// TxSystem allocates them only when the tier is enabled, so the heap
  /// layout is byte-identical with STAGTM_STM=off).
  StmSystem(htm::HtmSystem& htm, const StmConfig& cfg, unsigned cores,
            Addr clock_addr, Addr orec_base);

  const StmConfig& config() const { return cfg_; }
  Addr clock_addr() const { return clock_addr_; }
  Addr orec_addr(std::uint32_t idx) const { return orec_base_ + 8u * idx; }

  /// Hash of an address to its covering orec index. Line-granular (all
  /// bytes of a cache line share an orec) and mixed so that adjacent lines
  /// spread across the table; exposed for the collision unit tests.
  std::uint32_t orec_index(Addr a) const {
    return static_cast<std::uint32_t>(mix64(sim::line_addr(a) >> 6) &
                                      (cfg_.orecs - 1));
  }

  // ---- transaction lifecycle (driven by runtime/tx_executor.cpp) ----
  struct Op {
    std::uint64_t value = 0;
    Cycle latency = 0;
    bool ok = true;  // false: the attempt must abort (validation)
  };

  /// Begins an attempt: samples the read version from the global clock.
  /// The executor must have verified the glock is free first.
  Cycle begin(CoreId c);

  /// TL2 read: orec precheck (abort on locked or version > rv — opacity),
  /// coherent data load, redo-log overlay (reads-own-writes), read-set
  /// append. One synchronizing step.
  Op read(CoreId c, Addr a, unsigned size, std::uint32_t pc);

  /// Deferred write: byte-masked append to the redo log plus Bloom update.
  /// No simulated memory traffic until commit.
  Cycle write(CoreId c, Addr a, std::uint64_t v, unsigned size);

  bool read_only(CoreId c) const { return tx_[c].redo.empty(); }
  bool active(CoreId c) const { return tx_[c].active; }

  /// One lock-acquisition step: try to lock the next write-set orec in
  /// sorted index order.
  enum class LockStatus : std::uint8_t {
    kAllHeld,   // every write-set orec is locked (or there were none)
    kAdvanced,  // locked one more; call again next step
    kBusy,      // next orec is held by another writer; spin or give up
  };
  struct LockStep {
    LockStatus status = LockStatus::kAllHeld;
    Cycle latency = 0;
  };
  LockStep lock_next(CoreId c);

  /// Final commit step (executor has checked the glock): verify held locks
  /// survived (an irrevocable stamp can clobber one), validate the read
  /// set (every observed version unchanged and unlocked-by-others — strict
  /// revalidation so the commit step IS the serialization point and the
  /// commit log's append order is the order the oracle replays), then for
  /// writers bump the clock, drain the redo log, and release the orecs at
  /// the new version. On failure the held orecs are released (restored)
  /// and the attempt state cleared.
  Op commit(CoreId c);

  /// Aborts the attempt: guarded release of held orecs (restore the saved
  /// version only if the word is still our locked value — an irrevocable
  /// stamp may have overwritten it, and rolling that back would hide the
  /// irrevocable writes) and state reset. Returns the release latency.
  Cycle abort(CoreId c);

  /// Line whose metadata caused the last validation/lock failure (the orec
  /// word's address; feeds trace and blame records).
  Addr conflict_addr(CoreId c) const { return tx_[c].conflict_addr; }

  // ---- HTM-commit coexistence (called from the executor's atomic
  // commit_sequence step; see runtime/tx_executor.cpp) ----
  /// Distinct orec indices covering `lines`, sorted (scratch-buffer reuse).
  const std::vector<std::uint32_t>& orecs_for_lines(
      const std::vector<Addr>& lines);

  // ---- irrevocable (glock) coexistence ----
  /// Glock acquired: remember the irrevocable write version (the executor
  /// bumped the clock) and reset the stamp-dedup set.
  void begin_irrev(CoreId c, std::uint64_t wv);
  /// Stamp the orec covering an irrevocable store's line at the
  /// irrevocable write version (once per orec per irrevocable execution;
  /// repeat stores to the same orec are free). May clobber an STM writer's
  /// lock — that writer aborts at its next step (it observes the glock)
  /// and its guarded release leaves the stamp in place.
  Cycle irrev_stamp(CoreId c, Addr line);

 private:
  struct Chunk {
    std::uint64_t data = 0;
    std::uint8_t mask = 0;  // bit i set => byte i is buffered
  };
  struct ReadEntry {
    std::uint32_t orec = 0;
    std::uint64_t version = 0;
  };
  struct Held {
    std::uint32_t orec = 0;
    std::uint64_t saved = 0;  // version restored on abort
  };
  struct TxState {
    bool active = false;
    std::uint64_t rv = 0;
    std::vector<ReadEntry> reads;
    Bloom64 read_bloom;
    std::unordered_map<Addr, Chunk> redo;  // keyed by addr >> 3
    Bloom64 write_bloom;
    std::vector<std::uint32_t> write_orecs;  // distinct; sorted at lock time
    Bloom64 orec_bloom;                      // summarizes write_orecs
    std::vector<Held> held;
    std::size_t lock_cursor = 0;
    bool locks_sorted = false;
    Addr conflict_addr = 0;
    // Irrevocable-stamp dedup (valid between begin_irrev and glock release).
    std::uint64_t irrev_wv = 0;
    std::vector<std::uint32_t> irrev_stamped;
    Bloom64 irrev_bloom;
  };

  std::uint64_t overlay_redo(const TxState& tx, Addr a, unsigned size,
                             std::uint64_t v) const;
  void reset(TxState& tx);
  /// Guarded release of every held orec; returns accumulated latency.
  Cycle release_held(CoreId c, TxState& tx);
  sim::CoreStats& stats(CoreId c) { return htm_.stats().core(c); }

  htm::HtmSystem& htm_;
  StmConfig cfg_;
  Addr clock_addr_ = 0;
  Addr orec_base_ = 0;
  std::vector<TxState> tx_;
  std::vector<std::uint32_t> orec_scratch_;
};

}  // namespace st::stm
