#include "stm/stm.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/env.hpp"

namespace st::stm {

namespace {
// A redo-log append is a store into a core-local log buffer: L1-store cost,
// no coherence traffic until the commit-time writeback.
constexpr Cycle kStmWriteCost = 2;

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

StmConfig StmConfig::from_env() {
  StmConfig c;
  c.enabled = env_onoff("STAGTM_STM", false);
  c.retries = static_cast<unsigned>(
      env_u64("STAGTM_STM_RETRIES", 8, 0, 1000, "an integer in [0,1000]"));
  const std::uint64_t orecs = env_u64("STAGTM_STM_ORECS", 4096, 16, 1u << 20,
                                      "a power of two in [16,1048576]");
  if (!is_pow2(orecs)) {
    const std::string v = env_str("STAGTM_STM_ORECS");
    env_fail("STAGTM_STM_ORECS", v.c_str(), "a power of two in [16,1048576]");
  }
  c.orecs = static_cast<unsigned>(orecs);
  return c;
}

StmSystem::StmSystem(htm::HtmSystem& htm, const StmConfig& cfg, unsigned cores,
                     Addr clock_addr, Addr orec_base)
    : htm_(htm), cfg_(cfg), clock_addr_(clock_addr), orec_base_(orec_base),
      tx_(cores) {
  ST_CHECK_MSG(is_pow2(cfg_.orecs), "orec-table size must be a power of two");
}

void StmSystem::reset(TxState& tx) {
  tx.active = false;
  tx.rv = 0;
  tx.reads.clear();
  tx.read_bloom.clear();
  tx.redo.clear();
  tx.write_bloom.clear();
  tx.write_orecs.clear();
  tx.orec_bloom.clear();
  tx.held.clear();
  tx.lock_cursor = 0;
  tx.locks_sorted = false;
}

Cycle StmSystem::begin(CoreId c) {
  TxState& tx = tx_[c];
  ST_CHECK_MSG(!tx.active, "STM attempt already in flight");
  reset(tx);
  tx.active = true;
  tx.conflict_addr = 0;
  const auto rv = htm_.plain_load(c, clock_addr_, 8);
  tx.rv = rv.value;
  return rv.latency;
}

std::uint64_t StmSystem::overlay_redo(const TxState& tx, Addr a, unsigned size,
                                      std::uint64_t v) const {
  const Addr chunk = a >> 3;
  if (!tx.write_bloom.maybe(static_cast<std::uint32_t>(chunk))) return v;
  const auto it = tx.redo.find(chunk);
  if (it == tx.redo.end()) return v;  // Bloom false positive
  const unsigned off = static_cast<unsigned>(a & 7);
  const Chunk& wc = it->second;
  for (unsigned i = 0; i < size; ++i) {
    if (wc.mask & (1u << (off + i))) {
      const std::uint64_t byte = (wc.data >> (8 * (off + i))) & 0xFF;
      v = (v & ~(std::uint64_t{0xFF} << (8 * i))) | (byte << (8 * i));
    }
  }
  return v;
}

StmSystem::Op StmSystem::read(CoreId c, Addr a, unsigned size,
                              std::uint32_t pc) {
  (void)pc;
  TxState& tx = tx_[c];
  ST_CHECK_MSG(tx.active, "STM read outside an attempt");
  Op r;
  const std::uint32_t idx = orec_index(a);
  // Orec precheck (TL2 read validation, for opacity): a locked orec means
  // an in-flight writer may be about to change this line; a version past
  // rv means someone committed it since this attempt began. Either way the
  // snapshot is no longer consistent — abort and retry rather than hand
  // the interpreted program a torn view it could loop or crash on.
  const auto ow = htm_.plain_load(c, orec_addr(idx), 8);
  r.latency += ow.latency;
  if (orec_locked(ow.value) || orec_version(ow.value) > tx.rv) {
    tx.conflict_addr = orec_addr(idx);
    r.ok = false;
    return r;
  }
  const auto data = htm_.plain_load(c, a, size);
  r.latency += data.latency;
  r.value = overlay_redo(tx, a, size, data.value);
  ++stats(c).tx_mem_ops;
  // Read-set append, deduplicated by orec (the Bloom filter screens out
  // the common fresh-orec case; a maybe falls back to the exact scan). A
  // duplicate always carries the same version: any later commit bumps the
  // orec past rv (wv = clock+1 > rv), which the precheck above catches.
  if (tx.read_bloom.maybe(idx)) {
    for (const ReadEntry& e : tx.reads)
      if (e.orec == idx) return r;
  }
  tx.reads.push_back({idx, ow.value});
  tx.read_bloom.add(idx);
  return r;
}

Cycle StmSystem::write(CoreId c, Addr a, std::uint64_t v, unsigned size) {
  TxState& tx = tx_[c];
  ST_CHECK_MSG(tx.active, "STM write outside an attempt");
  const Addr chunk = a >> 3;
  const unsigned off = static_cast<unsigned>(a & 7);
  Chunk& wc = tx.redo[chunk];
  for (unsigned i = 0; i < size; ++i) {
    const std::uint64_t byte = (v >> (8 * i)) & 0xFF;
    wc.data = (wc.data & ~(std::uint64_t{0xFF} << (8 * (off + i)))) |
              (byte << (8 * (off + i)));
    wc.mask |= static_cast<std::uint8_t>(1u << (off + i));
  }
  tx.write_bloom.add(static_cast<std::uint32_t>(chunk));
  const std::uint32_t idx = orec_index(a);
  if (!tx.orec_bloom.maybe(idx) ||
      std::find(tx.write_orecs.begin(), tx.write_orecs.end(), idx) ==
          tx.write_orecs.end()) {
    tx.write_orecs.push_back(idx);
    tx.orec_bloom.add(idx);
  }
  ++stats(c).tx_mem_ops;
  return kStmWriteCost;
}

StmSystem::LockStep StmSystem::lock_next(CoreId c) {
  TxState& tx = tx_[c];
  ST_CHECK_MSG(tx.active, "STM lock step outside an attempt");
  LockStep r;
  if (!tx.locks_sorted) {
    // Sorted index order: two STM writers acquiring overlapping sets meet
    // at the same first contested orec, so one always makes progress (no
    // STM-STM deadlock).
    std::sort(tx.write_orecs.begin(), tx.write_orecs.end());
    tx.locks_sorted = true;
    tx.lock_cursor = 0;
  }
  if (tx.lock_cursor >= tx.write_orecs.size()) {
    r.status = LockStatus::kAllHeld;
    return r;
  }
  const std::uint32_t idx = tx.write_orecs[tx.lock_cursor];
  const Addr oa = orec_addr(idx);
  const auto cur = htm_.plain_load(c, oa, 8);
  r.latency += cur.latency;
  if (orec_locked(cur.value)) {
    ++stats(c).stm_orec_waits;
    tx.conflict_addr = oa;
    r.status = LockStatus::kBusy;
    return r;
  }
  // The step is atomic, so the load above cannot be raced: store the
  // locked word directly (a CAS would observe exactly `cur`).
  const auto st = htm_.plain_store(c, oa, cur.value | 1, 8);
  r.latency += st.latency;
  ++stats(c).stm_lock_acquires;
  tx.held.push_back({idx, orec_version(cur.value)});
  ++tx.lock_cursor;
  r.status = tx.lock_cursor >= tx.write_orecs.size() ? LockStatus::kAllHeld
                                                     : LockStatus::kAdvanced;
  return r;
}

Cycle StmSystem::release_held(CoreId c, TxState& tx) {
  Cycle lat = 0;
  for (const Held& h : tx.held) {
    // Guarded restore: only roll the word back if it is still our locked
    // value. An irrevocable stamp may have overwritten the lock (see
    // irrev_stamp); restoring the saved version over that stamp would hide
    // the irrevocable writes from later validators.
    const auto cas = htm_.nontx_cas(c, orec_addr(h.orec),
                                    orec_word(h.saved, true),
                                    orec_word(h.saved, false));
    lat += cas.latency;
  }
  tx.held.clear();
  return lat;
}

StmSystem::Op StmSystem::commit(CoreId c) {
  TxState& tx = tx_[c];
  ST_CHECK_MSG(tx.active, "STM commit outside an attempt");
  Op r;
  // Held-lock integrity: an irrevocable execution may have stamped (and so
  // unlocked) one of our orecs while we were acquiring the rest. Writing
  // back over its stamp would corrupt the version protocol — treat it as
  // a validation failure.
  for (const Held& h : tx.held) {
    const auto w = htm_.plain_load(c, orec_addr(h.orec), 8);
    r.latency += w.latency;
    if (w.value != orec_word(h.saved, true)) {
      tx.conflict_addr = orec_addr(h.orec);
      r.ok = false;
      break;
    }
  }
  // Strict read-set revalidation: every observed version must be unchanged
  // and unlocked (or locked by us with the same saved version). Stricter
  // than TL2's `<= rv` on purpose: it makes this step the serialization
  // point for read-only transactions too, so the commit log's append order
  // is exactly the order the serial-replay oracle re-executes.
  if (r.ok) {
    for (const ReadEntry& e : tx.reads) {
      bool mine = false;
      for (const Held& h : tx.held) {
        if (h.orec == e.orec) {
          mine = true;
          if (orec_word(h.saved, false) != e.version) r.ok = false;
          break;
        }
      }
      if (mine) {
        if (!r.ok) {
          tx.conflict_addr = orec_addr(e.orec);
          break;
        }
        continue;
      }
      const auto w = htm_.plain_load(c, orec_addr(e.orec), 8);
      r.latency += w.latency;
      if (w.value != e.version) {  // changed, or locked by another writer
        tx.conflict_addr = orec_addr(e.orec);
        r.ok = false;
        break;
      }
    }
  }
  if (!r.ok) {
    // The executor counts the abort by cause; here just restore the locks
    // and clear the attempt.
    r.latency += release_held(c, tx);
    reset(tx);
    return r;
  }
  if (!tx.redo.empty()) {
    // Write version: clock + 1, published before the writeback so any
    // concurrent reader that slips between our steps — there are none;
    // this whole method runs inside one atomic step — would still observe
    // a version past its rv. The bump is a plain store: committed state.
    const auto clk = htm_.plain_load(c, clock_addr_, 8);
    r.latency += clk.latency;
    const std::uint64_t wv = clk.value + 1;
    r.latency += htm_.plain_store(c, clock_addr_, wv, 8).latency;
    // Redo-log writeback. Plain stores fire eager requester-wins
    // coherence: any hardware transaction holding one of these lines
    // speculatively aborts here — the committing STM transaction wins,
    // exactly as a committed plain store always has.
    for (const auto& [chunk, wc] : tx.redo) {
      const Addr base = chunk << 3;
      std::uint64_t v = htm_.heap().load(base, 8);
      for (unsigned i = 0; i < 8; ++i) {
        if (wc.mask & (1u << i)) {
          const std::uint64_t byte = (wc.data >> (8 * i)) & 0xFF;
          v = (v & ~(std::uint64_t{0xFF} << (8 * i))) | (byte << (8 * i));
        }
      }
      r.latency += htm_.plain_store(c, base, v, 8).latency;
    }
    // Release every held orec at the new version.
    for (const Held& h : tx.held)
      r.latency += htm_.plain_store(c, orec_addr(h.orec),
                                    orec_word(wv, false), 8).latency;
    tx.held.clear();
  }
  reset(tx);
  return r;
}

Cycle StmSystem::abort(CoreId c) {
  TxState& tx = tx_[c];
  ST_CHECK_MSG(tx.active, "STM abort outside an attempt");
  const Cycle lat = release_held(c, tx);
  reset(tx);
  return lat;
}

const std::vector<std::uint32_t>& StmSystem::orecs_for_lines(
    const std::vector<Addr>& lines) {
  orec_scratch_.clear();
  for (Addr l : lines) orec_scratch_.push_back(orec_index(l));
  std::sort(orec_scratch_.begin(), orec_scratch_.end());
  orec_scratch_.erase(
      std::unique(orec_scratch_.begin(), orec_scratch_.end()),
      orec_scratch_.end());
  return orec_scratch_;
}

void StmSystem::begin_irrev(CoreId c, std::uint64_t wv) {
  TxState& tx = tx_[c];
  tx.irrev_wv = wv;
  tx.irrev_stamped.clear();
  tx.irrev_bloom.clear();
}

Cycle StmSystem::irrev_stamp(CoreId c, Addr line) {
  TxState& tx = tx_[c];
  const std::uint32_t idx = orec_index(line);
  if (tx.irrev_bloom.maybe(idx) &&
      std::find(tx.irrev_stamped.begin(), tx.irrev_stamped.end(), idx) !=
          tx.irrev_stamped.end())
    return 0;
  tx.irrev_stamped.push_back(idx);
  tx.irrev_bloom.add(idx);
  // The stamp overwrites whatever is there — including an STM writer's
  // lock. That writer observes the glock at its next step, aborts, and its
  // guarded release leaves this stamp in place (see release_held).
  return htm_.plain_store(c, orec_addr(idx), orec_word(tx.irrev_wv, false), 8)
      .latency;
}

}  // namespace st::stm
