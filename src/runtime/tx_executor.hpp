// TxExecutor: runs one atomic block on one simulated core, handling the
// full hardware-transaction lifecycle:
//
//   begin -> speculative execution (with ALPoints) -> lazy global-lock
//   subscription -> commit
//     \-> abort -> advisory-lock release -> locking-policy update ->
//         polite backoff -> retry (up to max_retries)
//           \-> STM tier (STAGTM_STM=on, src/stm): TL2 attempt ->
//               orec lock acquisition -> validate/commit, up to
//               STAGTM_STM_RETRIES attempts
//             \-> global-lock acquisition -> irrevocable execution
//
// With the STM tier off (the default) the middle stage vanishes: retries
// fall straight to the global lock, byte-identical to builds without
// src/stm.
//
// The executor is a resumable state machine: each step() performs one
// boundary instruction, one spin/backoff interval, or one fused run of
// pure-register instructions (bounded by the caller-provided cycle budget,
// see interp::Interp::step), so the discrete-event scheduler interleaves
// cores faithfully.
#pragma once

#include <vector>

#include "interp/interp.hpp"
#include "runtime/tx_system.hpp"

namespace st::runtime {

class TxExecutor {
 public:
  TxExecutor(TxSystem& sys, sim::CoreId core);
  ~TxExecutor();
  TxExecutor(const TxExecutor&) = delete;
  TxExecutor& operator=(const TxExecutor&) = delete;

  /// Begins executing atomic block `ab_id` with the given arguments.
  void start(unsigned ab_id, std::vector<std::uint64_t> args);

  bool idle() const { return state_ == State::kIdle; }
  bool finished() const { return state_ == State::kFinished; }
  /// Return value of the committed atomic block; resets to idle.
  std::uint64_t take_result();

  /// Advances the executor; call only while !idle() && !finished().
  /// `budget` bounds how many cycles a fused interpreter run may consume
  /// (pass sim::Machine::fuse_budget(); 1 forces single-stepping). One
  /// step may retire several pure-register instructions, but boundary
  /// instructions still execute one per step.
  sim::Cycle step(sim::Cycle budget = 1);

  /// True when the next step() call is guaranteed window-local: it touches
  /// nothing outside this core's interpreter frames, own L1, own stats row,
  /// and lines still private to this core. Pure-register runs always
  /// qualify; with the STAGTM_PRIVATE classification on, so do calls,
  /// inner returns, and loads/stores that hit a line private to this core
  /// (see step_commutes). Everything else (begin/commit/abort handling,
  /// shared-line accesses, lock spins, backoff) is a synchronizing step.
  /// The parallel machine (sim/machine.hpp) consults this through
  /// CoreTask::next_step_local.
  bool next_step_local() const;

  /// Monotone count of interpreter instructions this executor has retired
  /// across all attempts and ops, including doomed (later-aborted) ones.
  /// Host-side observability only (the parallel engine differences it
  /// around step() calls to weight the window/drain split by work instead
  /// of step-call count); never feeds back into simulated results.
  std::uint64_t instrs_retired() const {
    switch (state_) {
      case State::kRunning: return instrs_done_ + spec_interp_->instrs_executed();
      case State::kStmRunning:
        return instrs_done_ + stm_interp_->instrs_executed();
      case State::kIrrevRunning:
        return instrs_done_ + plain_interp_->instrs_executed();
      default:
        return instrs_done_;
    }
  }

  sim::CoreId core() const { return core_; }
  TxSystem& system() { return sys_; }

 private:
  enum class State {
    kIdle,
    kBeginAttempt,
    kRunning,
    kStmBeginAttempt,  // STM tier (src/stm): waiting to begin an attempt
    kStmRunning,       // executing under the TL2 read/write-set protocol
    kStmLockAcquire,   // locking write-set orecs, one per step
    kStmCommit,        // validate + write back (single atomic step)
    kGlockAcquire,
    kIrrevRunning,
    kFinished,
  };

  class SpecEnv;
  class StmEnv;
  class PlainEnv;

  /// Whether the next step commutes with every synchronizing step another
  /// core could take: it reads and writes only this-core-local state. This
  /// is the knob-INDEPENDENT core of the window classification, and it
  /// also gates pending-abort observation in run_step — both the gate and
  /// the classifier must use the same predicate, or enabling the knob
  /// would change where a doomed transaction notices its abort. Valid only
  /// in kRunning / kIrrevRunning.
  bool step_commutes() const;

  sim::Cycle begin_attempt();
  /// kTxSched: whole-transaction serialization lock (§7 comparison). The
  /// lock key is synthesized from the atomic-block id.
  sim::Addr sched_lock_key() const;
  sim::Cycle run_step(sim::Cycle budget);
  sim::Cycle commit_sequence();
  sim::Cycle handle_abort(htm::AbortCause self_cause);
  sim::Cycle glock_step();
  sim::Cycle irrev_step(sim::Cycle budget);
  void resolve_and_train(const htm::AbortInfo& info);

  // ---- STM tier (valid only when sys_.stm() != nullptr) ----
  sim::Cycle stm_begin_attempt();
  sim::Cycle stm_run_step(sim::Cycle budget);
  sim::Cycle stm_lock_step();
  sim::Cycle stm_commit_step();
  /// Abort epilogue for the STM tier: guarded orec release, allocation
  /// rollback, stats/trace/prov/policy bookkeeping, then retry (with
  /// backoff) or fall to the glock.
  sim::Cycle stm_abort(htm::AbortCause cause);
  /// HTM + STM attempts so far for this block (what h_tx_retries, the
  /// commit log, and backoff scaling count).
  unsigned total_attempts() const { return attempts_ + stm_attempts_; }

  /// ALPoint protocol shared by the HTM and STM execution environments
  /// (Fig. 5 firing rule + advisory-lock spin). `check_pending` gates the
  /// HTM pending-abort observation; STM attempts have no asynchronous
  /// aborts, so they pass false.
  interp::ExecEnv::AlpResult do_alpoint(std::uint32_t alp_id,
                                        sim::Addr data_addr,
                                        bool check_pending);

  static constexpr sim::Cycle kBeginCost = 5;
  static constexpr sim::Cycle kCommitCost = 10;
  // An abort costs a pipeline flush, register-checkpoint restore, and the
  // software handler's dispatch before the retry loop resumes.
  static constexpr sim::Cycle kAbortHandlerCost = 120;
  static constexpr sim::Cycle kSpinPad = 8;

  TxSystem& sys_;
  sim::CoreId core_;
  /// Cached MemorySystem::private_classification() (config is immutable
  /// after construction): gates only whether private-line hits classify as
  /// window-local, never what they do.
  bool private_windows_ = false;
  std::unique_ptr<SpecEnv> spec_env_;
  std::unique_ptr<StmEnv> stm_env_;      // null when the STM tier is off
  std::unique_ptr<PlainEnv> plain_env_;
  std::unique_ptr<interp::Interp> spec_interp_;
  std::unique_ptr<interp::Interp> stm_interp_;  // null when the tier is off
  std::unique_ptr<interp::Interp> plain_interp_;

  State state_ = State::kIdle;
  unsigned ab_id_ = 0;
  const ir::Function* func_ = nullptr;
  std::vector<std::uint64_t> args_;
  stagger::ABContext* ctx_ = nullptr;
  unsigned attempts_ = 0;      // HTM attempts this block
  unsigned stm_attempts_ = 0;  // STM attempts this block
  /// STM-attempt allocations (rolled back on abort) and deferred frees
  /// (performed at commit, dropped on abort) — the software mirror of the
  /// HTM's tx_alloc/tx_free bookkeeping, which only arms inside a hardware
  /// transaction.
  std::vector<sim::Addr> stm_allocs_;
  std::vector<sim::Addr> stm_frees_;
  sim::Cycle attempt_cycles_ = 0;
  sim::Cycle lock_wait_accum_ = 0;  // current ALP acquire sequence
  sim::Addr alp_target_ = 0;        // address being advisory-locked
  bool spinning_on_alp_ = false;
  bool last_step_lock_wait_ = false;
  std::uint64_t result_ = 0;
  /// Instructions retired by completed attempts (committed, aborted, or
  /// irrevocable); the live interpreter's count is added on top in
  /// instrs_retired(). Bumped at exactly the points where the per-attempt
  /// interpreter counters are folded into MachineStats, i.e. before any
  /// interpreter restart can reset them.
  std::uint64_t instrs_done_ = 0;

  friend class SpecEnv;
  friend class StmEnv;
  friend class PlainEnv;
};

}  // namespace st::runtime
