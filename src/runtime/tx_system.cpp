#include "runtime/tx_system.hpp"

#include "common/check.hpp"

namespace st::runtime {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return "HTM";
    case Scheme::kAddrOnly: return "AddrOnly";
    case Scheme::kStaggered: return "Staggered";
    case Scheme::kStaggeredSW: return "Staggered+SW";
    case Scheme::kTxSched: return "TxSched";
  }
  return "?";
}

stagger::InstrumentMode instrument_mode_for(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return stagger::InstrumentMode::kNone;
    case Scheme::kAddrOnly: return stagger::InstrumentMode::kEntryOnly;
    case Scheme::kStaggered:
    case Scheme::kStaggeredSW: return stagger::InstrumentMode::kAnchors;
    case Scheme::kTxSched: return stagger::InstrumentMode::kNone;
  }
  return stagger::InstrumentMode::kNone;
}

TxSystem::TxSystem(const RuntimeConfig& cfg, stagger::CompiledProgram& prog)
    : cfg_(cfg),
      prog_(prog),
      stats_(cfg.cores),
      machine_(cfg.cores),
      heap_(cfg.cores + 1, cfg.arena_bytes),
      priv_(heap_),
      policy_(cfg.policy) {
  ST_CHECK_MSG(prog.module != nullptr && prog.module->finalized(),
               "TxSystem needs a compiled, finalized program");
  cfg_.mem.cores = cfg_.cores;
  machine_.set_step_fusion(cfg_.macrostep);
  machine_.set_host_threads(cfg_.host_threads);
  if (cfg_.trace.enabled())
    trace_ = std::make_unique<obs::TraceSink>(
        cfg_.cores, cfg_.trace.cap_per_core, cfg_.trace.mask);
  if (cfg_.prov.enabled())
    prov_ = std::make_unique<obs::ProvSink>(cfg_.cores, cfg_.prov.cap_per_core,
                                            cfg_.prov.footprint_lines);
  if (cfg_.record_commits) commit_log_ = std::make_unique<CommitLog>();
  machine_.set_trace(trace_.get());
  mem_ = std::make_unique<sim::MemorySystem>(cfg_.mem, stats_);
  htm_ = std::make_unique<htm::HtmSystem>(heap_, *mem_, stats_);
  htm_->set_clock([this] { return machine_.now(); });
  htm_->set_trace(trace_.get());
  htm_->set_prov(prov_.get());
  // Allocation-site tracking feeds abort attribution; pure observer (the
  // site map is never read by anything simulated), so it is gated with the
  // sink rather than always on.
  if (prov_ != nullptr) heap_.set_site_tracking(true);
  // Privacy wiring, before any allocation (the glock below must be seeded
  // through on_alloc like everything else): the heap reports block extents,
  // the HTM reports publications, and the memory system consumes both —
  // escape materialization, fast paths, and window classification.
  heap_.set_privacy(&priv_);
  priv_.set_sink(mem_.get());
  mem_->set_privacy(&priv_);
  mem_->set_trace(trace_.get());
  mem_->set_clock([this] { return machine_.now(); });
  mem_->set_window_probe([this] { return machine_.in_parallel_phase(); });
  htm_->set_privacy(&priv_);
  locks_ = std::make_unique<stagger::AdvisoryLockTable>(
      *htm_, cfg_.num_advisory_locks);
  locks_->set_trace(trace_.get());
  locks_->set_prov(prov_.get());
  policy_.set_trace(trace_.get(), [this] { return machine_.now(); });
  cpc_ = std::make_unique<stagger::CpcMap>(*htm_);
  glock_ = heap_.alloc_line_aligned(heap_.setup_arena(), 8);
  if (cfg_.stm.enabled) {
    // STM metadata lives after the glock in the setup arena; with the tier
    // off neither allocation happens, so the heap layout — and therefore
    // every simulated address and result — is byte-identical to a run
    // without the tier.
    const sim::Addr clock_addr =
        heap_.alloc_line_aligned(heap_.setup_arena(), 8);
    const sim::Addr orec_base = heap_.alloc_line_aligned(
        heap_.setup_arena(), std::uint64_t{cfg_.stm.orecs} * 8);
    stm_ = std::make_unique<stm::StmSystem>(*htm_, cfg_.stm, cfg_.cores,
                                            clock_addr, orec_base);
  }

  const unsigned num_abs =
      static_cast<unsigned>(prog.module->atomic_blocks().size());
  ST_CHECK(prog.tables.size() == num_abs);
  rngs_.reserve(cfg_.cores);
  abctx_.reserve(static_cast<std::size_t>(cfg_.cores) * num_abs);
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    rngs_.emplace_back(mix64(cfg_.seed) ^ (0x1234'5678ull * (c + 1)));
    for (unsigned ab = 0; ab < num_abs; ++ab) {
      abctx_.push_back(std::make_unique<stagger::ABContext>(
          prog.tables[ab].get(), cfg_.history_len));
      abctx_.back()->core = c;
      abctx_.back()->ab_id = ab;
    }
  }
}

stagger::ABContext& TxSystem::abctx(sim::CoreId c, unsigned ab_id) {
  const unsigned num_abs =
      static_cast<unsigned>(prog_.module->atomic_blocks().size());
  ST_CHECK(c < cfg_.cores && ab_id < num_abs);
  return *abctx_[static_cast<std::size_t>(c) * num_abs + ab_id];
}

sim::Cycle TxSystem::run(sim::Cycle max_cycles) {
  return machine_.run(max_cycles);
}

}  // namespace st::runtime
