// TxSystem: wires simulator, HTM, compiled program, and the staggered-
// transactions runtime together for one experiment run.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "htm/htm.hpp"
#include "interp/jit.hpp"
#include "obs/prov.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "stagger/advisory_locks.hpp"
#include "stagger/cpc_map.hpp"
#include "stagger/instrument.hpp"
#include "stagger/policy.hpp"
#include "stm/stm.hpp"

namespace st::runtime {

/// Which contention-reduction scheme the runtime applies (Fig. 7 legend,
/// plus the §7 related-work baseline).
enum class Scheme : std::uint8_t {
  kBaseline,     // plain HTM with global-lock fallback
  kAddrOnly,     // fixed entry ALP, precise mode only
  kStaggered,    // paper scheme with hardware conflicting-PC tags
  kStaggeredSW,  // paper scheme with the software CPC map (§4)
  kTxSched,      // proactive transaction scheduling (Blake et al., §7):
                 // serialize *entire* predicted-conflicting transactions
};

const char* scheme_name(Scheme s);

/// Matches the instrumentation the scheme requires.
stagger::InstrumentMode instrument_mode_for(Scheme s);

/// One committed atomic block, as recorded for the serializability oracle
/// (src/check/oracle.hpp). Entries are appended in simulated commit order —
/// the discrete-event loop executes steps in exactly the order their
/// effects become visible, so append order IS the serialization order the
/// oracle replays.
struct CommitRecord {
  sim::Cycle cycle = 0;  // commit time (reporting only; order is the log)
  sim::CoreId core = 0;
  std::uint16_t ab_id = 0;
  std::uint16_t attempts = 0;
  bool irrevocable = false;
  /// Execution tier that committed the block: 0 = HTM, 1 = irrevocable
  /// global lock (mirrors `irrevocable`), 2 = STM fallback.
  std::uint8_t tier = 0;
  std::uint64_t result = 0;
  std::vector<std::uint64_t> args;
};
using CommitLog = std::vector<CommitRecord>;

struct RuntimeConfig {
  unsigned cores = 16;
  sim::MemConfig mem;  // mem.cores is forced to `cores`
  Scheme scheme = Scheme::kBaseline;
  /// HTM attempts before falling back (STM tier if enabled, else the
  /// irrevocable glock). 0 skips hardware transactions entirely. The
  /// workload harness defaults this from STAGTM_MAX_RETRIES.
  unsigned max_retries = 10;
  /// TL2 STM fallback tier between HTM retries and the glock (src/stm).
  /// Disabled by default — the executor, heap layout, and every simulated
  /// result are byte-identical to builds that predate the tier. The
  /// workload harness fills it from STAGTM_STM{,_RETRIES,_ORECS}.
  stm::StmConfig stm;
  unsigned num_advisory_locks = 256;
  sim::Cycle lock_timeout = 2'000;
  sim::Cycle backoff_base = 64;    // Polite: mean delay = base * attempt
  unsigned history_len = 8;
  stagger::PolicyConfig policy;
  std::size_t arena_bytes = 16u << 20;
  std::uint64_t seed = 1;
  /// Host-side interpreter macro-stepping; simulated results are identical
  /// either way (see sim::Machine::fuse_budget). Defaults to the
  /// STAGTM_MACROSTEP env knob.
  bool macrostep = sim::Machine::default_step_fusion();
  /// Interpreter execution tier (interp/jit.hpp). Host-side only, like
  /// macrostep: which dispatcher retires instructions never changes a
  /// simulated result (CI-enforced byte-identical across tiers). Defaults
  /// to the STAGTM_JIT / STAGTM_JIT_THRESHOLD / STAGTM_JIT_CAP env knobs,
  /// sampled when this config is constructed.
  interp::JitConfig jit = interp::JitConfig::from_env();
  /// Event tracing (obs/trace.hpp). Tracing is a pure observer: no sink is
  /// even allocated unless trace.enabled(), and simulated results are
  /// CI-enforced identical with tracing on and off. Defaults OFF here;
  /// the workload harness fills it from STAGTM_TRACE.
  obs::TraceConfig trace;
  /// Conflict provenance (obs/prov.hpp). A pure observer like trace: no
  /// sink is allocated unless prov.enabled(), and simulated results are
  /// CI-enforced byte-identical with provenance on and off. Defaults OFF
  /// here; the workload harness fills it from STAGTM_PROF*.
  obs::ProvConfig prov;
  /// Record every committed atomic block (identity, args, result, commit
  /// cycle) into TxSystem's CommitLog for the serializability oracle. Off
  /// by default: no log is allocated and the commit path is unchanged.
  bool record_commits = false;
  /// Host worker threads sharding the event loop (sim/machine.hpp's
  /// parallel deterministic engine). Host-side only, like macrostep and
  /// jit: simulated results are bit-identical for any value (CI-enforced).
  /// Defaults to the STAGTM_THREADS env knob (unset = 1 = serial loop).
  unsigned host_threads = sim::Machine::default_host_threads();
  /// Checker-validation backdoor: compile out the lazy global-lock
  /// subscription read at commit. This deliberately reintroduces the
  /// unserializable executions lazy subscription is known to admit (Dice &
  /// Harris) so tests can prove the oracle catches them. NEVER set outside
  /// the checker's broken-build tests.
  bool unsafe_skip_subscription = false;
};

class TxSystem {
 public:
  /// `prog` must have been compiled with instrument_mode_for(cfg.scheme).
  TxSystem(const RuntimeConfig& cfg, stagger::CompiledProgram& prog);

  sim::Machine& machine() { return machine_; }
  sim::Heap& heap() { return heap_; }
  sim::PrivacyMap& privacy() { return priv_; }
  sim::MemorySystem& mem() { return *mem_; }
  htm::HtmSystem& htm() { return *htm_; }
  sim::MachineStats& stats() { return stats_; }
  stagger::AdvisoryLockTable& locks() { return *locks_; }
  stagger::CpcMap& cpc() { return *cpc_; }
  stagger::LockingPolicy& policy() { return policy_; }
  stagger::CompiledProgram& program() { return prog_; }
  const RuntimeConfig& config() const { return cfg_; }
  Xoshiro256ss& rng(sim::CoreId c) { return rngs_[c]; }

  stagger::ABContext& abctx(sim::CoreId c, unsigned ab_id);

  sim::Addr glock_addr() const { return glock_; }

  /// Null unless cfg.stm.enabled — with the tier off no orec table is
  /// allocated and no STM code runs (pure-off invariance, CI-enforced).
  stm::StmSystem* stm() { return stm_.get(); }

  /// Null unless cfg.trace.enabled(); every subsystem emits through this.
  obs::TraceSink* trace() { return trace_.get(); }

  /// Null unless cfg.prov.enabled(); the HTM, lock table, and executors
  /// feed it, the harness exports it.
  obs::ProvSink* prov() { return prov_.get(); }

  /// Null unless cfg.record_commits; the TxExecutor appends on commit.
  CommitLog* commit_log() { return commit_log_.get(); }

  /// Runs every installed core task to completion (or until `max_cycles`
  /// of global time elapse); returns elapsed cycles.
  sim::Cycle run(sim::Cycle max_cycles = ~sim::Cycle{0});

 private:
  RuntimeConfig cfg_;
  stagger::CompiledProgram& prog_;
  std::unique_ptr<obs::TraceSink> trace_;
  std::unique_ptr<obs::ProvSink> prov_;
  std::unique_ptr<CommitLog> commit_log_;
  sim::MachineStats stats_;
  sim::Machine machine_;
  sim::Heap heap_;
  sim::PrivacyMap priv_;  // after heap_: its geometry comes from there
  std::unique_ptr<sim::MemorySystem> mem_;
  std::unique_ptr<htm::HtmSystem> htm_;
  std::unique_ptr<stagger::AdvisoryLockTable> locks_;
  std::unique_ptr<stagger::CpcMap> cpc_;
  stagger::LockingPolicy policy_;
  std::vector<Xoshiro256ss> rngs_;
  // abctx_[core * num_abs + ab]
  std::vector<std::unique_ptr<stagger::ABContext>> abctx_;
  sim::Addr glock_ = 0;
  std::unique_ptr<stm::StmSystem> stm_;  // null when the tier is off
};

}  // namespace st::runtime
