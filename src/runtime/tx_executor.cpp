#include "runtime/tx_executor.hpp"

#include "common/check.hpp"

namespace st::runtime {

using htm::AbortCause;
using interp::ExecEnv;
using interp::Interp;

// ---------------------------------------------------------------------------
// Speculative environment: transactional accesses + live ALPoints.
// ---------------------------------------------------------------------------
class TxExecutor::SpecEnv final : public ExecEnv {
 public:
  explicit SpecEnv(TxExecutor& e) : e_(e) {}

  Mem load(sim::Addr a, unsigned size, std::uint32_t pc) override {
    const auto r = e_.sys_.htm().load(e_.core_, a, size, pc);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem store(sim::Addr a, std::uint64_t v, unsigned size,
            std::uint32_t pc) override {
    const auto r = e_.sys_.htm().store(e_.core_, a, v, size, pc);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_load(sim::Addr a, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_store(sim::Addr a, std::uint64_t v, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_store(e_.core_, a, v, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem alloc(const ir::StructType* t, sim::Addr& out,
            std::uint32_t pc) override {
    out = e_.sys_.htm().tx_alloc(e_.core_, t->size, pc);
    return Mem{out, Interp::kAllocCost, true};
  }
  void free_(sim::Addr a) override { e_.sys_.htm().tx_free(e_.core_, a); }

  AlpResult alpoint(std::uint32_t alp_id, sim::Addr data_addr,
                    std::uint32_t pc) override {
    (void)pc;
    TxExecutor& e = e_;
    auto& st = e.sys_.stats().core(e.core_);
    stagger::ABContext& ctx = *e.ctx_;
    sim::Cycle cost = Interp::kInactiveAlpCost;

    if (!e.spinning_on_alp_) {
      ++st.alp_executed;
      if (e.sys_.config().scheme == Scheme::kStaggeredSW)
        cost += e.sys_.cpc().record(e.core_, data_addr, alp_id);
      // Fig. 5: fire only when this ALP is the active anchor and the data
      // address matches the remembered conflict address (or wildcard).
      if (ctx.active_anchor != alp_id) return {cost, false, true};
      sim::Addr target = data_addr != 0 ? data_addr : ctx.block_address;
      if (ctx.block_address != 0 && target != 0 &&
          sim::line_addr(target) != sim::line_addr(ctx.block_address))
        return {cost, false, true};
      if (target == 0) {  // nothing concrete to lock yet
        ctx.active_anchor = 0;
        return {cost, false, true};
      }
      e.alp_target_ = target;
      e.lock_wait_accum_ = 0;
      if (auto* t = e.sys_.trace())
        t->emit(e.core_, {e.sys_.machine().now(),
                          obs::EventKind::kAlpFired, 0, 0, alp_id,
                          sim::line_addr(target)});
    }

    if (e.sys_.htm().pending_abort(e.core_)) {
      if (auto* p = e.sys_.prov())
        p->on_lock_wait_aborted(e.core_, e.sys_.machine().now());
      e.spinning_on_alp_ = false;
      return {cost, false, false};
    }
    const auto r = e.sys_.locks().try_acquire(e.core_, e.alp_target_);
    if (r.acquired) {
      ctx.active_anchor = 0;  // one lock per transaction (Fig. 5 line 4)
      ++st.alp_acquires;
      e.spinning_on_alp_ = false;
      return {cost + r.latency, false, true};
    }
    e.lock_wait_accum_ += r.latency + kSpinPad;
    if (e.lock_wait_accum_ > e.sys_.config().lock_timeout) {
      // Give up and run unprotected (§2: "simply proceed when the timeout
      // expires"); correctness stays with the HTM.
      ++st.alp_timeouts;
      ctx.active_anchor = 0;
      e.spinning_on_alp_ = false;
      e.sys_.policy().on_lock_timeout(ctx);
      if (auto* p = e.sys_.prov())
        p->on_lock_timeout(e.core_, e.sys_.machine().now());
      if (auto* t = e.sys_.trace())
        t->emit(e.core_, {e.sys_.machine().now(),
                          obs::EventKind::kLockTimeout, 0, 0,
                          e.sys_.locks().lock_index(e.alp_target_),
                          e.lock_wait_accum_});
      return {cost + r.latency, false, true};
    }
    e.spinning_on_alp_ = true;
    e.last_step_lock_wait_ = true;
    return {r.latency + kSpinPad, true, true};
  }

 private:
  TxExecutor& e_;
};

// ---------------------------------------------------------------------------
// Plain environment: irrevocable execution under the global lock.
// ---------------------------------------------------------------------------
class TxExecutor::PlainEnv final : public ExecEnv {
 public:
  explicit PlainEnv(TxExecutor& e) : e_(e) {}

  Mem load(sim::Addr a, unsigned size, std::uint32_t pc) override {
    (void)pc;
    const auto r = e_.sys_.htm().plain_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem store(sim::Addr a, std::uint64_t v, unsigned size,
            std::uint32_t pc) override {
    const auto r = e_.sys_.htm().plain_store(e_.core_, a, v, size, pc);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_load(sim::Addr a, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_store(sim::Addr a, std::uint64_t v, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_store(e_.core_, a, v, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem alloc(const ir::StructType* t, sim::Addr& out,
            std::uint32_t pc) override {
    out = e_.sys_.htm().tx_alloc(e_.core_, t->size, pc);
    return Mem{out, Interp::kAllocCost, true};
  }
  void free_(sim::Addr a) override { e_.sys_.htm().tx_free(e_.core_, a); }

  AlpResult alpoint(std::uint32_t, sim::Addr, std::uint32_t) override {
    return {Interp::kInactiveAlpCost, false, true};  // ALPs idle when serial
  }

 private:
  TxExecutor& e_;
};

// ---------------------------------------------------------------------------

TxExecutor::TxExecutor(TxSystem& sys, sim::CoreId core)
    : sys_(sys), core_(core),
      private_windows_(sys.htm().mem().private_classification()) {
  spec_env_ = std::make_unique<SpecEnv>(*this);
  plain_env_ = std::make_unique<PlainEnv>(*this);
  spec_interp_ = std::make_unique<Interp>(*spec_env_, &sys_.config().jit);
  plain_interp_ = std::make_unique<Interp>(*plain_env_, &sys_.config().jit);
}

TxExecutor::~TxExecutor() = default;

void TxExecutor::start(unsigned ab_id, std::vector<std::uint64_t> args) {
  ST_CHECK_MSG(state_ == State::kIdle, "executor already busy");
  ab_id_ = ab_id;
  func_ = sys_.program().module->atomic_blocks().at(ab_id);
  args_ = std::move(args);
  ctx_ = &sys_.abctx(core_, ab_id);
  attempts_ = 0;
  lock_wait_accum_ = 0;
  state_ = State::kBeginAttempt;
}

std::uint64_t TxExecutor::take_result() {
  ST_CHECK(state_ == State::kFinished);
  state_ = State::kIdle;
  return result_;
}

bool TxExecutor::step_commutes() const {
  const interp::Interp& in =
      state_ == State::kRunning ? *spec_interp_ : *plain_interp_;
  const auto na = in.next_access();
  using K = interp::Interp::NextAccess::Kind;
  switch (na.kind) {
    case K::kPure:
    case K::kCall:       // pushes a frame: interpreter-local
    case K::kRetInner:   // pops to the caller: interpreter-local
      return true;
    case K::kLoad:
    case K::kStore:
      // A hit on a line still private to this core touches only the core's
      // own L1, write buffer, and (for irrevocable stores) heap bytes no
      // other core can name. Privacy is stable across a whole lookahead
      // window (escapes happen only at drain steps), so this answer cannot
      // rot between classification and execution. Line-crossing accesses
      // would need two private hits; the simulator forbids them anyway, so
      // classify them synchronizing and let the access path diagnose.
      return sim::line_addr(na.addr) ==
                 sim::line_addr(na.addr + (na.size ? na.size - 1 : 0)) &&
             sys_.htm().mem().private_hit(core_, na.addr);
    default:
      // Alloc/free, nontransactional ops, ALPoints, the final Ret.
      return false;
  }
}

bool TxExecutor::next_step_local() const {
  switch (state_) {
    case State::kRunning:
      // A pending abort stamp does NOT matter here: run_step observes
      // stamps only at non-commuting steps, so a doomed attempt's
      // remaining commuting steps retire identically whether the stamp is
      // visible yet or not.
      return private_windows_ ? step_commutes() : spec_interp_->next_is_pure();
    case State::kIrrevRunning:
      // Irrevocable execution holds the global lock and cannot abort; its
      // commuting steps are as private as speculative ones.
      return private_windows_ ? step_commutes()
                              : plain_interp_->next_is_pure();
    default:
      return false;
  }
}

sim::Cycle TxExecutor::step(sim::Cycle budget) {
  switch (state_) {
    case State::kBeginAttempt: return begin_attempt();
    case State::kRunning: return run_step(budget);
    case State::kGlockAcquire: return glock_step();
    case State::kIrrevRunning: return irrev_step(budget);
    default:
      ST_CHECK_MSG(false, "step() on an idle/finished executor");
      return 1;
  }
}

sim::Addr TxExecutor::sched_lock_key() const {
  return sys_.glock_addr() + sim::kLineBytes * (ab_id_ + 1);
}

sim::Cycle TxExecutor::begin_attempt() {
  // Proactive transaction scheduling (§7 baseline): when the predictor for
  // this atomic block fired, serialize the WHOLE transaction behind a lock
  // acquired before xbegin — no partial overlap.
  if (sys_.config().scheme == Scheme::kTxSched && attempts_ == 0) {
    stagger::ABContext& ctx = sys_.abctx(core_, ab_id_);
    if (ctx.configured_anchor != 0 && !sys_.locks().holds_lock(core_)) {
      const auto r = sys_.locks().try_acquire(core_, sched_lock_key());
      if (!r.acquired) {
        lock_wait_accum_ += r.latency + kSpinPad;
        auto& st = sys_.stats().core(core_);
        if (lock_wait_accum_ > sys_.config().lock_timeout) {
          ++st.alp_timeouts;
          sys_.policy().on_lock_timeout(ctx);
          if (auto* p = sys_.prov())
            p->on_lock_timeout(core_, sys_.machine().now());
          if (auto* t = sys_.trace())
            t->emit(core_, {sys_.machine().now(),
                            obs::EventKind::kLockTimeout, 0, 0,
                            sys_.locks().lock_index(sched_lock_key()),
                            lock_wait_accum_});
          lock_wait_accum_ = 0;  // proceed unprotected
        } else {
          st.cycles_lock_wait += r.latency + kSpinPad;
          return r.latency + kSpinPad;  // keep spinning in this state
        }
      } else {
        ++sys_.stats().core(core_).alp_acquires;
      }
    }
  }
  ++attempts_;
  attempt_cycles_ = 0;
  lock_wait_accum_ = 0;
  spinning_on_alp_ = false;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxBegin, 0, 0,
                    ab_id_, attempts_});
  if (auto* p = sys_.prov()) p->on_attempt_begin(core_, ab_id_, attempts_);
  ctx_->arm();
  if (sys_.config().scheme == Scheme::kStaggeredSW)
    sys_.cpc().begin_tx(core_);
  sys_.htm().begin(core_);
  spec_interp_->start(func_, args_);
  state_ = State::kRunning;
  attempt_cycles_ += kBeginCost;
  return kBeginCost;
}

sim::Cycle TxExecutor::run_step(sim::Cycle budget) {
  // An asynchronous (cross-core) abort stamp is observed at the next
  // NON-COMMUTING step, never between core-local ones: the doomed attempt
  // keeps retiring (and the abort discards the work), just as a real core
  // keeps retiring until the abort interrupt lands. With observation
  // points restricted to synchronizing steps, the abort's timing is a
  // function of the victim's own instruction stream — not of when between
  // two such steps the stamp landed — which is the invariant that lets the
  // parallel engine (sim/machine.hpp, DESIGN.md §13–14) run commuting
  // steps inside lookahead windows without consulting shared state. The
  // predicate is deliberately knob-independent (see step_commutes).
  if (sys_.htm().pending_abort(core_) && !step_commutes())
    return handle_abort(AbortCause::None);
  last_step_lock_wait_ = false;
  const auto s = spec_interp_->step(budget);
  if (s.aborted) {
    // The instruction observed the transaction's death; its cycles are part
    // of the doomed attempt.
    attempt_cycles_ += s.cycles;
    return s.cycles + handle_abort(AbortCause::None);
  }
  if (last_step_lock_wait_)
    sys_.stats().core(core_).cycles_lock_wait += s.cycles;
  else
    attempt_cycles_ += s.cycles;
  if (s.finished) return s.cycles + commit_sequence();
  return s.cycles;
}

sim::Cycle TxExecutor::commit_sequence() {
  sim::Cycle cost = 0;
  // Lazy subscription: read the global fallback lock transactionally right
  // before commit (§6 "Compiler and HTM Runtime"). The unsafe knob models
  // a build with the subscription compiled out (checker validation only).
  if (!sys_.config().unsafe_skip_subscription) {
    const auto sub = sys_.htm().load(core_, sys_.glock_addr(), 8, 0);
    cost += sub.latency;
    attempt_cycles_ += sub.latency;
    if (!sub.ok) return cost + handle_abort(AbortCause::None);
    if (sub.value != 0) return cost + handle_abort(AbortCause::Glock);
  }

  const bool held = sys_.locks().holds_lock(core_);
  // "No contention on that lock" (§5.2): nobody queued on the lock AND the
  // transaction needed no retries — evidence the serialization was not
  // earning its keep, so the policy may decay the activation.
  const bool contended =
      sys_.locks().contended_while_held(core_) && attempts_ > 1;
  sim::Cycle publish = 0;
  if (!sys_.htm().commit(core_, &publish))
    return cost + handle_abort(AbortCause::None);

  cost += kCommitCost + publish;
  attempt_cycles_ += kCommitCost + publish;
  cost += sys_.locks().release(core_);
  if (sys_.config().scheme != Scheme::kBaseline)
    sys_.policy().on_commit(*ctx_, held, contended, attempts_ == 1);

  auto& st = sys_.stats().core(core_);
  st.cycles_useful_tx += attempt_cycles_;
  st.tx_instrs += spec_interp_->instrs_executed();
  st.interp_instrs += spec_interp_->instrs_executed();
  instrs_done_ += spec_interp_->instrs_executed();
  st.h_tx_cycles.add(attempt_cycles_);
  st.h_tx_retries.add(attempts_);
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxCommit, 0, 0,
                    ab_id_, attempts_});
  if (auto* p = sys_.prov()) p->on_attempt_commit(core_, sys_.machine().now());
  result_ = spec_interp_->result();
  // The result crosses into the host (workload next_op logic), which can
  // hand it to any other core: publication point.
  sys_.htm().publish_host_value(core_, result_);
  if (auto* log = sys_.commit_log())
    log->push_back({sys_.machine().now(), core_,
                    static_cast<std::uint16_t>(ab_id_),
                    static_cast<std::uint16_t>(attempts_),
                    /*irrevocable=*/false, result_, args_});
  state_ = State::kFinished;
  return cost;
}

void TxExecutor::resolve_and_train(const htm::AbortInfo& info) {
  const Scheme scheme = sys_.config().scheme;
  if (scheme == Scheme::kBaseline) return;
  auto& st = sys_.stats().core(core_);
  const stagger::UnifiedAnchorTable& table = *ctx_->table();

  std::uint32_t identified = 0;
  switch (scheme) {
    case Scheme::kStaggered: {
      // Hardware conflicting-PC: the (truncated) tag indexes the unified
      // anchor table; non-anchors resolve through their pioneer.
      if (info.pc_tag_valid)
        if (const auto* e = table.lookup_tag(info.pc_tag))
          identified = e->pioneer_alp;
      break;
    }
    case Scheme::kStaggeredSW: {
      identified =
          sys_.cpc().lookup(core_, info.conflict_line).value_or(0);
      break;
    }
    case Scheme::kAddrOnly:
      identified = sys_.program().entry_alps.at(ab_id_);
      break;
    case Scheme::kTxSched:
      // Whole-transaction scheduling has no anchors; a synthetic per-block
      // id feeds the same frequency predictor.
      identified = 1 + ab_id_;
      break;
    default:
      break;
  }

  // Accuracy bookkeeping (Table 3): compare against the simulator's ground
  // truth — the full PC of the first speculative access to the line.
  if (scheme == Scheme::kStaggered || scheme == Scheme::kStaggeredSW) {
    if (const auto* truth = table.lookup_pc(info.true_first_pc)) {
      if (truth->pioneer_alp != 0) {
        if (identified == truth->pioneer_alp)
          ++st.anchor_id_correct;
        else
          ++st.anchor_id_wrong;
      }
    }
  }

  sys_.policy().on_abort(*ctx_, identified, info.conflict_line);
}

sim::Cycle TxExecutor::handle_abort(AbortCause self_cause) {
  const auto info = sys_.htm().abort(core_, self_cause);
  sim::Cycle cost = kAbortHandlerCost;
  cost += sys_.locks().release(core_);
  spinning_on_alp_ = false;
  if (auto* p = sys_.prov())
    p->on_attempt_abort(core_, attempts_, attempt_cycles_,
                        attempts_ >= sys_.config().max_retries,
                        sys_.machine().now());

  auto& st = sys_.stats().core(core_);
  st.cycles_wasted_tx += attempt_cycles_;
  // Host-throughput accounting: the doomed attempt's instructions were
  // interpreted even though they never commit.
  st.interp_instrs += spec_interp_->instrs_executed();
  instrs_done_ += spec_interp_->instrs_executed();

  if (info.cause == AbortCause::Conflict) resolve_and_train(info);

  if (attempts_ >= sys_.config().max_retries) {
    state_ = State::kGlockAcquire;
    return cost;
  }
  // Polite backoff: mean delay proportional to the retry count.
  const sim::Cycle mean = sys_.config().backoff_base * attempts_;
  const sim::Cycle delay = sys_.rng(core_).next_below(2 * mean + 1);
  st.cycles_backoff += delay;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kBackoff, 0, 0,
                    attempts_, delay});
  state_ = State::kBeginAttempt;
  return cost + delay;
}

sim::Cycle TxExecutor::glock_step() {
  const auto cas = sys_.htm().nontx_cas(core_, sys_.glock_addr(), 0, core_ + 1);
  if (!cas.success) {
    sys_.stats().core(core_).cycles_lock_wait += cas.latency + kSpinPad;
    return cas.latency + kSpinPad;
  }
  ++sys_.stats().core(core_).irrevocable_entries;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kIrrevocable, 0,
                    0, ab_id_, attempts_});
  if (auto* p = sys_.prov()) p->on_irrev_begin(core_, ab_id_);
  attempt_cycles_ = 0;
  plain_interp_->start(func_, args_);
  state_ = State::kIrrevRunning;
  return cas.latency;
}

sim::Cycle TxExecutor::irrev_step(sim::Cycle budget) {
  const auto s = plain_interp_->step(budget);
  ST_CHECK_MSG(!s.aborted, "irrevocable execution cannot abort");
  attempt_cycles_ += s.cycles;
  if (!s.finished) return s.cycles;

  auto& st = sys_.stats().core(core_);
  st.cycles_irrevocable += attempt_cycles_;
  st.tx_instrs += plain_interp_->instrs_executed();
  st.interp_instrs += plain_interp_->instrs_executed();
  instrs_done_ += plain_interp_->instrs_executed();
  ++st.commits;  // a serialized execution still commits its atomic block
  st.h_tx_cycles.add(attempt_cycles_);
  // The serial execution counts as the final "attempt" after attempts_
  // failed speculative tries.
  st.h_tx_retries.add(attempts_ + 1);
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxCommit,
                    /*irrevocable=*/1, 0, ab_id_, attempts_ + 1});
  if (auto* p = sys_.prov()) p->on_attempt_commit(core_, sys_.machine().now());
  result_ = plain_interp_->result();
  sys_.htm().publish_host_value(core_, result_);
  if (auto* log = sys_.commit_log())
    log->push_back({sys_.machine().now(), core_,
                    static_cast<std::uint16_t>(ab_id_),
                    static_cast<std::uint16_t>(attempts_ + 1),
                    /*irrevocable=*/true, result_, args_});
  const sim::Cycle rel =
      sys_.htm().nontx_store(core_, sys_.glock_addr(), 0, 8).latency;
  state_ = State::kFinished;
  return s.cycles + rel;
}

}  // namespace st::runtime
