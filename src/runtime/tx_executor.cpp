#include "runtime/tx_executor.hpp"

#include "common/check.hpp"

namespace st::runtime {

using htm::AbortCause;
using interp::ExecEnv;
using interp::Interp;

// ---------------------------------------------------------------------------
// Speculative environment: transactional accesses + live ALPoints.
// ---------------------------------------------------------------------------
class TxExecutor::SpecEnv final : public ExecEnv {
 public:
  explicit SpecEnv(TxExecutor& e) : e_(e) {}

  Mem load(sim::Addr a, unsigned size, std::uint32_t pc) override {
    const auto r = e_.sys_.htm().load(e_.core_, a, size, pc);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem store(sim::Addr a, std::uint64_t v, unsigned size,
            std::uint32_t pc) override {
    const auto r = e_.sys_.htm().store(e_.core_, a, v, size, pc);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_load(sim::Addr a, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_store(sim::Addr a, std::uint64_t v, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_store(e_.core_, a, v, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem alloc(const ir::StructType* t, sim::Addr& out,
            std::uint32_t pc) override {
    out = e_.sys_.htm().tx_alloc(e_.core_, t->size, pc);
    return Mem{out, Interp::kAllocCost, true};
  }
  void free_(sim::Addr a) override { e_.sys_.htm().tx_free(e_.core_, a); }

  AlpResult alpoint(std::uint32_t alp_id, sim::Addr data_addr,
                    std::uint32_t pc) override {
    (void)pc;
    return e_.do_alpoint(alp_id, data_addr, /*check_pending=*/true);
  }

 private:
  TxExecutor& e_;
};

// ---------------------------------------------------------------------------
// STM environment: TL2 read/write-set accesses (src/stm) + live ALPoints.
// Only constructed when the tier is enabled.
// ---------------------------------------------------------------------------
class TxExecutor::StmEnv final : public ExecEnv {
 public:
  explicit StmEnv(TxExecutor& e) : e_(e) {}

  Mem load(sim::Addr a, unsigned size, std::uint32_t pc) override {
    const auto r = e_.sys_.stm()->read(e_.core_, a, size, pc);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem store(sim::Addr a, std::uint64_t v, unsigned size,
            std::uint32_t pc) override {
    (void)pc;
    const sim::Cycle lat = e_.sys_.stm()->write(e_.core_, a, v, size);
    return Mem{v, lat, true};
  }
  Mem nt_load(sim::Addr a, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_store(sim::Addr a, std::uint64_t v, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_store(e_.core_, a, v, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem alloc(const ir::StructType* t, sim::Addr& out,
            std::uint32_t pc) override {
    // The HTM sees no active transaction, so this is a plain allocation;
    // the executor tracks it for rollback on STM abort (stm_abort).
    out = e_.sys_.htm().tx_alloc(e_.core_, t->size, pc);
    e_.stm_allocs_.push_back(out);
    return Mem{out, Interp::kAllocCost, true};
  }
  void free_(sim::Addr a) override {
    // Deferred like the HTM's tx_free: performed at commit, dropped on
    // abort (the block may still be read by the retry).
    e_.stm_frees_.push_back(a);
  }

  AlpResult alpoint(std::uint32_t alp_id, sim::Addr data_addr,
                    std::uint32_t pc) override {
    (void)pc;
    // Same advisory-lock protocol as the speculative tier — the paper's
    // scheme serializes conflicting blocks whichever tier runs them. STM
    // attempts have no asynchronous aborts, so no pending check.
    return e_.do_alpoint(alp_id, data_addr, /*check_pending=*/false);
  }

 private:
  TxExecutor& e_;
};

// ---------------------------------------------------------------------------
// Plain environment: irrevocable execution under the global lock.
// ---------------------------------------------------------------------------
class TxExecutor::PlainEnv final : public ExecEnv {
 public:
  explicit PlainEnv(TxExecutor& e) : e_(e) {}

  Mem load(sim::Addr a, unsigned size, std::uint32_t pc) override {
    (void)pc;
    const auto r = e_.sys_.htm().plain_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem store(sim::Addr a, std::uint64_t v, unsigned size,
            std::uint32_t pc) override {
    auto r = e_.sys_.htm().plain_store(e_.core_, a, v, size, pc);
    // Irrevocable stores are committed state the moment they land; stamp
    // the covering orec so concurrent STM readers/validators observe them
    // (DESIGN.md §16 — eager coherence only aborts HTM transactions).
    if (auto* stm = e_.sys_.stm())
      r.latency += stm->irrev_stamp(e_.core_, sim::line_addr(a));
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_load(sim::Addr a, unsigned size) override {
    const auto r = e_.sys_.htm().nontx_load(e_.core_, a, size);
    return Mem{r.value, r.latency, r.ok};
  }
  Mem nt_store(sim::Addr a, std::uint64_t v, unsigned size) override {
    auto r = e_.sys_.htm().nontx_store(e_.core_, a, v, size);
    if (auto* stm = e_.sys_.stm())
      r.latency += stm->irrev_stamp(e_.core_, sim::line_addr(a));
    return Mem{r.value, r.latency, r.ok};
  }
  Mem alloc(const ir::StructType* t, sim::Addr& out,
            std::uint32_t pc) override {
    out = e_.sys_.htm().tx_alloc(e_.core_, t->size, pc);
    return Mem{out, Interp::kAllocCost, true};
  }
  void free_(sim::Addr a) override { e_.sys_.htm().tx_free(e_.core_, a); }

  AlpResult alpoint(std::uint32_t, sim::Addr, std::uint32_t) override {
    return {Interp::kInactiveAlpCost, false, true};  // ALPs idle when serial
  }

 private:
  TxExecutor& e_;
};

// ---------------------------------------------------------------------------

TxExecutor::TxExecutor(TxSystem& sys, sim::CoreId core)
    : sys_(sys), core_(core),
      private_windows_(sys.htm().mem().private_classification()) {
  spec_env_ = std::make_unique<SpecEnv>(*this);
  plain_env_ = std::make_unique<PlainEnv>(*this);
  spec_interp_ = std::make_unique<Interp>(*spec_env_, &sys_.config().jit);
  plain_interp_ = std::make_unique<Interp>(*plain_env_, &sys_.config().jit);
  if (sys_.stm() != nullptr) {
    stm_env_ = std::make_unique<StmEnv>(*this);
    stm_interp_ = std::make_unique<Interp>(*stm_env_, &sys_.config().jit);
  }
}

TxExecutor::~TxExecutor() = default;

void TxExecutor::start(unsigned ab_id, std::vector<std::uint64_t> args) {
  ST_CHECK_MSG(state_ == State::kIdle, "executor already busy");
  ab_id_ = ab_id;
  func_ = sys_.program().module->atomic_blocks().at(ab_id);
  args_ = std::move(args);
  ctx_ = &sys_.abctx(core_, ab_id);
  attempts_ = 0;
  stm_attempts_ = 0;
  stm_allocs_.clear();
  stm_frees_.clear();
  lock_wait_accum_ = 0;
  // STAGTM_MAX_RETRIES=0: skip hardware transactions entirely and start in
  // the strongest enabled fallback tier.
  if (sys_.config().max_retries == 0)
    state_ = sys_.stm() != nullptr ? State::kStmBeginAttempt
                                   : State::kGlockAcquire;
  else
    state_ = State::kBeginAttempt;
}

std::uint64_t TxExecutor::take_result() {
  ST_CHECK(state_ == State::kFinished);
  state_ = State::kIdle;
  return result_;
}

bool TxExecutor::step_commutes() const {
  const interp::Interp& in =
      state_ == State::kRunning ? *spec_interp_ : *plain_interp_;
  const auto na = in.next_access();
  using K = interp::Interp::NextAccess::Kind;
  switch (na.kind) {
    case K::kPure:
    case K::kCall:       // pushes a frame: interpreter-local
    case K::kRetInner:   // pops to the caller: interpreter-local
      return true;
    case K::kLoad:
    case K::kStore:
      // A hit on a line still private to this core touches only the core's
      // own L1, write buffer, and (for irrevocable stores) heap bytes no
      // other core can name. Privacy is stable across a whole lookahead
      // window (escapes happen only at drain steps), so this answer cannot
      // rot between classification and execution. Line-crossing accesses
      // would need two private hits; the simulator forbids them anyway, so
      // classify them synchronizing and let the access path diagnose.
      return sim::line_addr(na.addr) ==
                 sim::line_addr(na.addr + (na.size ? na.size - 1 : 0)) &&
             sys_.htm().mem().private_hit(core_, na.addr);
    default:
      // Alloc/free, nontransactional ops, ALPoints, the final Ret.
      return false;
  }
}

bool TxExecutor::next_step_local() const {
  switch (state_) {
    case State::kStmRunning:
      // Pure-register runs only: STM loads/stores consult the orec table
      // and the redo log's versioned metadata, which are shared state even
      // when the data line is private — never window-local.
      return stm_interp_->next_is_pure();
    case State::kRunning:
      // A pending abort stamp does NOT matter here: run_step observes
      // stamps only at non-commuting steps, so a doomed attempt's
      // remaining commuting steps retire identically whether the stamp is
      // visible yet or not.
      return private_windows_ ? step_commutes() : spec_interp_->next_is_pure();
    case State::kIrrevRunning:
      // Irrevocable execution holds the global lock and cannot abort; its
      // commuting steps are as private as speculative ones.
      return private_windows_ ? step_commutes()
                              : plain_interp_->next_is_pure();
    default:
      return false;
  }
}

sim::Cycle TxExecutor::step(sim::Cycle budget) {
  switch (state_) {
    case State::kBeginAttempt: return begin_attempt();
    case State::kRunning: return run_step(budget);
    case State::kStmBeginAttempt: return stm_begin_attempt();
    case State::kStmRunning: return stm_run_step(budget);
    case State::kStmLockAcquire: return stm_lock_step();
    case State::kStmCommit: return stm_commit_step();
    case State::kGlockAcquire: return glock_step();
    case State::kIrrevRunning: return irrev_step(budget);
    default:
      ST_CHECK_MSG(false, "step() on an idle/finished executor");
      return 1;
  }
}

sim::Addr TxExecutor::sched_lock_key() const {
  return sys_.glock_addr() + sim::kLineBytes * (ab_id_ + 1);
}

interp::ExecEnv::AlpResult TxExecutor::do_alpoint(std::uint32_t alp_id,
                                                  sim::Addr data_addr,
                                                  bool check_pending) {
  auto& st = sys_.stats().core(core_);
  stagger::ABContext& ctx = *ctx_;
  sim::Cycle cost = Interp::kInactiveAlpCost;

  if (!spinning_on_alp_) {
    ++st.alp_executed;
    if (sys_.config().scheme == Scheme::kStaggeredSW)
      cost += sys_.cpc().record(core_, data_addr, alp_id);
    // Fig. 5: fire only when this ALP is the active anchor and the data
    // address matches the remembered conflict address (or wildcard).
    if (ctx.active_anchor != alp_id) return {cost, false, true};
    sim::Addr target = data_addr != 0 ? data_addr : ctx.block_address;
    if (ctx.block_address != 0 && target != 0 &&
        sim::line_addr(target) != sim::line_addr(ctx.block_address))
      return {cost, false, true};
    if (target == 0) {  // nothing concrete to lock yet
      ctx.active_anchor = 0;
      return {cost, false, true};
    }
    alp_target_ = target;
    lock_wait_accum_ = 0;
    if (auto* t = sys_.trace())
      t->emit(core_, {sys_.machine().now(), obs::EventKind::kAlpFired, 0, 0,
                      alp_id, sim::line_addr(target)});
  }

  if (check_pending && sys_.htm().pending_abort(core_)) {
    if (auto* p = sys_.prov())
      p->on_lock_wait_aborted(core_, sys_.machine().now());
    spinning_on_alp_ = false;
    return {cost, false, false};
  }
  const auto r = sys_.locks().try_acquire(core_, alp_target_);
  if (r.acquired) {
    ctx.active_anchor = 0;  // one lock per transaction (Fig. 5 line 4)
    ++st.alp_acquires;
    spinning_on_alp_ = false;
    return {cost + r.latency, false, true};
  }
  lock_wait_accum_ += r.latency + kSpinPad;
  if (lock_wait_accum_ > sys_.config().lock_timeout) {
    // Give up and run unprotected (§2: "simply proceed when the timeout
    // expires"); correctness stays with the TM tier.
    ++st.alp_timeouts;
    ctx.active_anchor = 0;
    spinning_on_alp_ = false;
    sys_.policy().on_lock_timeout(ctx);
    if (auto* p = sys_.prov())
      p->on_lock_timeout(core_, sys_.machine().now());
    if (auto* t = sys_.trace())
      t->emit(core_, {sys_.machine().now(), obs::EventKind::kLockTimeout, 0,
                      0, sys_.locks().lock_index(alp_target_),
                      lock_wait_accum_});
    return {cost + r.latency, false, true};
  }
  spinning_on_alp_ = true;
  last_step_lock_wait_ = true;
  return {r.latency + kSpinPad, true, true};
}

sim::Cycle TxExecutor::begin_attempt() {
  // Proactive transaction scheduling (§7 baseline): when the predictor for
  // this atomic block fired, serialize the WHOLE transaction behind a lock
  // acquired before xbegin — no partial overlap.
  if (sys_.config().scheme == Scheme::kTxSched && attempts_ == 0) {
    stagger::ABContext& ctx = sys_.abctx(core_, ab_id_);
    if (ctx.configured_anchor != 0 && !sys_.locks().holds_lock(core_)) {
      const auto r = sys_.locks().try_acquire(core_, sched_lock_key());
      if (!r.acquired) {
        lock_wait_accum_ += r.latency + kSpinPad;
        auto& st = sys_.stats().core(core_);
        if (lock_wait_accum_ > sys_.config().lock_timeout) {
          ++st.alp_timeouts;
          sys_.policy().on_lock_timeout(ctx);
          if (auto* p = sys_.prov())
            p->on_lock_timeout(core_, sys_.machine().now());
          if (auto* t = sys_.trace())
            t->emit(core_, {sys_.machine().now(),
                            obs::EventKind::kLockTimeout, 0, 0,
                            sys_.locks().lock_index(sched_lock_key()),
                            lock_wait_accum_});
          lock_wait_accum_ = 0;  // proceed unprotected
        } else {
          st.cycles_lock_wait += r.latency + kSpinPad;
          return r.latency + kSpinPad;  // keep spinning in this state
        }
      } else {
        ++sys_.stats().core(core_).alp_acquires;
      }
    }
  }
  ++attempts_;
  attempt_cycles_ = 0;
  lock_wait_accum_ = 0;
  spinning_on_alp_ = false;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxBegin, 0, 0,
                    ab_id_, attempts_});
  if (auto* p = sys_.prov()) p->on_attempt_begin(core_, ab_id_, attempts_);
  ctx_->arm();
  if (sys_.config().scheme == Scheme::kStaggeredSW)
    sys_.cpc().begin_tx(core_);
  sys_.htm().begin(core_);
  spec_interp_->start(func_, args_);
  state_ = State::kRunning;
  attempt_cycles_ += kBeginCost;
  return kBeginCost;
}

sim::Cycle TxExecutor::run_step(sim::Cycle budget) {
  // An asynchronous (cross-core) abort stamp is observed at the next
  // NON-COMMUTING step, never between core-local ones: the doomed attempt
  // keeps retiring (and the abort discards the work), just as a real core
  // keeps retiring until the abort interrupt lands. With observation
  // points restricted to synchronizing steps, the abort's timing is a
  // function of the victim's own instruction stream — not of when between
  // two such steps the stamp landed — which is the invariant that lets the
  // parallel engine (sim/machine.hpp, DESIGN.md §13–14) run commuting
  // steps inside lookahead windows without consulting shared state. The
  // predicate is deliberately knob-independent (see step_commutes).
  if (sys_.htm().pending_abort(core_) && !step_commutes())
    return handle_abort(AbortCause::None);
  last_step_lock_wait_ = false;
  const auto s = spec_interp_->step(budget);
  if (s.aborted) {
    // The instruction observed the transaction's death; its cycles are part
    // of the doomed attempt.
    attempt_cycles_ += s.cycles;
    return s.cycles + handle_abort(AbortCause::None);
  }
  if (last_step_lock_wait_)
    sys_.stats().core(core_).cycles_lock_wait += s.cycles;
  else
    attempt_cycles_ += s.cycles;
  if (s.finished) return s.cycles + commit_sequence();
  return s.cycles;
}

sim::Cycle TxExecutor::commit_sequence() {
  sim::Cycle cost = 0;
  // Lazy subscription: read the global fallback lock transactionally right
  // before commit (§6 "Compiler and HTM Runtime"). The unsafe knob models
  // a build with the subscription compiled out (checker validation only).
  if (!sys_.config().unsafe_skip_subscription) {
    const auto sub = sys_.htm().load(core_, sys_.glock_addr(), 8, 0);
    cost += sub.latency;
    attempt_cycles_ += sub.latency;
    if (!sub.ok) return cost + handle_abort(AbortCause::None);
    if (sub.value != 0) return cost + handle_abort(AbortCause::Glock);
  }

  // HTM<->STM coexistence (DESIGN.md §16), subscription-style: inspect the
  // orecs covering our write footprint with nontransactional loads (orec
  // words must never enter our own speculative set). A locked orec is an
  // STM writer mid-commit whose validated reads we are about to overwrite —
  // the hardware transaction yields. Then pre-bump the global version clock
  // so in-flight STM readers revalidate against this commit; the covered
  // orecs are stamped at the new version once the write set has drained.
  // (A stale bump from a commit that subsequently fails is harmless: no
  // data changed, later STM validations are merely conservative.)
  std::uint64_t stm_wv = 0;
  const std::vector<std::uint32_t>* stamp_orecs = nullptr;
  if (auto* stm = sys_.stm()) {
    const auto& lines = sys_.htm().written_lines(core_);
    if (!lines.empty()) {
      const auto& orecs = stm->orecs_for_lines(lines);
      for (std::uint32_t idx : orecs) {
        const auto w = sys_.htm().nontx_load(core_, stm->orec_addr(idx), 8);
        cost += w.latency;
        attempt_cycles_ += w.latency;
        if (!w.ok) return cost + handle_abort(AbortCause::None);
        if (stm::orec_locked(w.value))
          return cost + handle_abort(AbortCause::StmLock);
      }
      const auto clk = sys_.htm().nontx_load(core_, stm->clock_addr(), 8);
      cost += clk.latency;
      attempt_cycles_ += clk.latency;
      if (!clk.ok) return cost + handle_abort(AbortCause::None);
      stm_wv = clk.value + 1;
      const auto cs =
          sys_.htm().nontx_store(core_, stm->clock_addr(), stm_wv, 8);
      cost += cs.latency;
      attempt_cycles_ += cs.latency;
      stamp_orecs = &orecs;
    }
  }

  const bool held = sys_.locks().holds_lock(core_);
  // "No contention on that lock" (§5.2): nobody queued on the lock AND the
  // transaction needed no retries — evidence the serialization was not
  // earning its keep, so the policy may decay the activation.
  const bool contended =
      sys_.locks().contended_while_held(core_) && attempts_ > 1;
  sim::Cycle publish = 0;
  if (!sys_.htm().commit(core_, &publish))
    return cost + handle_abort(AbortCause::None);

  if (stamp_orecs != nullptr) {
    for (std::uint32_t idx : *stamp_orecs) {
      const auto ss = sys_.htm().nontx_store(
          core_, sys_.stm()->orec_addr(idx), stm::orec_word(stm_wv, false),
          8);
      cost += ss.latency;
      attempt_cycles_ += ss.latency;
    }
  }

  cost += kCommitCost + publish;
  attempt_cycles_ += kCommitCost + publish;
  cost += sys_.locks().release(core_);
  if (sys_.config().scheme != Scheme::kBaseline)
    sys_.policy().on_commit(*ctx_, held, contended, attempts_ == 1);

  auto& st = sys_.stats().core(core_);
  st.cycles_useful_tx += attempt_cycles_;
  st.tx_instrs += spec_interp_->instrs_executed();
  st.interp_instrs += spec_interp_->instrs_executed();
  instrs_done_ += spec_interp_->instrs_executed();
  st.h_tx_cycles.add(attempt_cycles_);
  st.h_tx_retries.add(attempts_);
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxCommit, 0, 0,
                    ab_id_, attempts_});
  if (auto* p = sys_.prov()) p->on_attempt_commit(core_, sys_.machine().now());
  result_ = spec_interp_->result();
  // The result crosses into the host (workload next_op logic), which can
  // hand it to any other core: publication point.
  sys_.htm().publish_host_value(core_, result_);
  if (auto* log = sys_.commit_log())
    log->push_back({sys_.machine().now(), core_,
                    static_cast<std::uint16_t>(ab_id_),
                    static_cast<std::uint16_t>(attempts_),
                    /*irrevocable=*/false, /*tier=*/0, result_, args_});
  state_ = State::kFinished;
  return cost;
}

void TxExecutor::resolve_and_train(const htm::AbortInfo& info) {
  const Scheme scheme = sys_.config().scheme;
  if (scheme == Scheme::kBaseline) return;
  auto& st = sys_.stats().core(core_);
  const stagger::UnifiedAnchorTable& table = *ctx_->table();

  std::uint32_t identified = 0;
  switch (scheme) {
    case Scheme::kStaggered: {
      // Hardware conflicting-PC: the (truncated) tag indexes the unified
      // anchor table; non-anchors resolve through their pioneer.
      if (info.pc_tag_valid)
        if (const auto* e = table.lookup_tag(info.pc_tag))
          identified = e->pioneer_alp;
      break;
    }
    case Scheme::kStaggeredSW: {
      identified =
          sys_.cpc().lookup(core_, info.conflict_line).value_or(0);
      break;
    }
    case Scheme::kAddrOnly:
      identified = sys_.program().entry_alps.at(ab_id_);
      break;
    case Scheme::kTxSched:
      // Whole-transaction scheduling has no anchors; a synthetic per-block
      // id feeds the same frequency predictor.
      identified = 1 + ab_id_;
      break;
    default:
      break;
  }

  // Accuracy bookkeeping (Table 3): compare against the simulator's ground
  // truth — the full PC of the first speculative access to the line.
  if (scheme == Scheme::kStaggered || scheme == Scheme::kStaggeredSW) {
    if (const auto* truth = table.lookup_pc(info.true_first_pc)) {
      if (truth->pioneer_alp != 0) {
        if (identified == truth->pioneer_alp)
          ++st.anchor_id_correct;
        else
          ++st.anchor_id_wrong;
      }
    }
  }

  sys_.policy().on_abort(*ctx_, identified, info.conflict_line);
}

sim::Cycle TxExecutor::handle_abort(AbortCause self_cause) {
  const auto info = sys_.htm().abort(core_, self_cause);
  sim::Cycle cost = kAbortHandlerCost;
  cost += sys_.locks().release(core_);
  spinning_on_alp_ = false;
  // With the STM tier on, exhausting HTM retries falls to STM, not the
  // glock — will_glock stays accurate for the blame pipeline.
  const bool exhausted = attempts_ >= sys_.config().max_retries;
  const bool will_glock = exhausted && sys_.stm() == nullptr;
  if (auto* p = sys_.prov())
    p->on_attempt_abort(core_, attempts_, attempt_cycles_, will_glock,
                        sys_.machine().now());

  auto& st = sys_.stats().core(core_);
  st.cycles_wasted_tx += attempt_cycles_;
  // Host-throughput accounting: the doomed attempt's instructions were
  // interpreted even though they never commit.
  st.interp_instrs += spec_interp_->instrs_executed();
  instrs_done_ += spec_interp_->instrs_executed();

  if (info.cause == AbortCause::Conflict) resolve_and_train(info);

  if (exhausted) {
    state_ = sys_.stm() != nullptr ? State::kStmBeginAttempt
                                   : State::kGlockAcquire;
    return cost;
  }
  // Polite backoff: mean delay proportional to the retry count.
  const sim::Cycle mean = sys_.config().backoff_base * attempts_;
  const sim::Cycle delay = sys_.rng(core_).next_below(2 * mean + 1);
  st.cycles_backoff += delay;
  st.h_tx_backoff.add(delay);
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kBackoff, 0, 0,
                    attempts_, delay});
  state_ = State::kBeginAttempt;
  return cost + delay;
}

sim::Cycle TxExecutor::glock_step() {
  const auto cas = sys_.htm().nontx_cas(core_, sys_.glock_addr(), 0, core_ + 1);
  if (!cas.success) {
    sys_.stats().core(core_).cycles_lock_wait += cas.latency + kSpinPad;
    return cas.latency + kSpinPad;
  }
  ++sys_.stats().core(core_).irrevocable_entries;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kIrrevocable, 0,
                    0, ab_id_, total_attempts()});
  if (auto* p = sys_.prov()) p->on_irrev_begin(core_, ab_id_);
  attempt_cycles_ = 0;
  sim::Cycle cost = cas.latency;
  if (auto* stm = sys_.stm()) {
    // Irrevocable writes serialize after everything committed so far: bump
    // the clock once and stamp the orec of every line this execution
    // stores to at the new version (PlainEnv::store). STM attempts cannot
    // begin while the glock is held, and live ones fail validation on any
    // stamped orec they read.
    const auto clk = sys_.htm().nontx_load(core_, stm->clock_addr(), 8);
    const std::uint64_t wv = clk.value + 1;
    const auto cs = sys_.htm().nontx_store(core_, stm->clock_addr(), wv, 8);
    cost += clk.latency + cs.latency;
    stm->begin_irrev(core_, wv);
  }
  plain_interp_->start(func_, args_);
  state_ = State::kIrrevRunning;
  return cost;
}

sim::Cycle TxExecutor::irrev_step(sim::Cycle budget) {
  const auto s = plain_interp_->step(budget);
  ST_CHECK_MSG(!s.aborted, "irrevocable execution cannot abort");
  attempt_cycles_ += s.cycles;
  if (!s.finished) return s.cycles;

  auto& st = sys_.stats().core(core_);
  st.cycles_irrevocable += attempt_cycles_;
  st.tx_instrs += plain_interp_->instrs_executed();
  st.interp_instrs += plain_interp_->instrs_executed();
  instrs_done_ += plain_interp_->instrs_executed();
  ++st.commits;  // a serialized execution still commits its atomic block
  st.h_tx_cycles.add(attempt_cycles_);
  // The serial execution counts as the final "attempt" after the failed
  // speculative (HTM + STM) tries.
  st.h_tx_retries.add(total_attempts() + 1);
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxCommit,
                    /*tier=*/1, 0, ab_id_, total_attempts() + 1});
  if (auto* p = sys_.prov()) p->on_attempt_commit(core_, sys_.machine().now());
  result_ = plain_interp_->result();
  sys_.htm().publish_host_value(core_, result_);
  if (auto* log = sys_.commit_log())
    log->push_back({sys_.machine().now(), core_,
                    static_cast<std::uint16_t>(ab_id_),
                    static_cast<std::uint16_t>(total_attempts() + 1),
                    /*irrevocable=*/true, /*tier=*/1, result_, args_});
  const sim::Cycle rel =
      sys_.htm().nontx_store(core_, sys_.glock_addr(), 0, 8).latency;
  state_ = State::kFinished;
  return s.cycles + rel;
}

// ---------------------------------------------------------------------------
// STM tier (DESIGN.md §16). Reached only when sys_.stm() != nullptr, so the
// interpreter/env members are always live here.
// ---------------------------------------------------------------------------

sim::Cycle TxExecutor::stm_begin_attempt() {
  auto* stm = sys_.stm();
  // STM attempts never start while an irrevocable execution holds the
  // global lock: its plain stores bypass orec locking, so running under it
  // could validate against half-applied state. Spin here (glock holders
  // are short-lived by design).
  const auto g = sys_.htm().nontx_load(core_, sys_.glock_addr(), 8);
  if (g.value != 0) {
    sys_.stats().core(core_).cycles_lock_wait += g.latency + kSpinPad;
    return g.latency + kSpinPad;
  }
  ++stm_attempts_;
  attempt_cycles_ = 0;
  lock_wait_accum_ = 0;
  spinning_on_alp_ = false;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxBegin,
                    /*tier=*/2, 0, ab_id_, total_attempts()});
  if (auto* p = sys_.prov())
    p->on_attempt_begin(core_, ab_id_, total_attempts());
  ctx_->arm();
  if (sys_.config().scheme == Scheme::kStaggeredSW) sys_.cpc().begin_tx(core_);
  const sim::Cycle bl = stm->begin(core_);
  stm_interp_->start(func_, args_);
  state_ = State::kStmRunning;
  attempt_cycles_ += kBeginCost + g.latency + bl;
  return kBeginCost + g.latency + bl;
}

sim::Cycle TxExecutor::stm_run_step(sim::Cycle budget) {
  last_step_lock_wait_ = false;
  const auto s = stm_interp_->step(budget);
  if (s.aborted) {
    // An StmEnv read failed its orec precheck (locked, or written since our
    // read version): TL2 opacity abort.
    attempt_cycles_ += s.cycles;
    return s.cycles + stm_abort(AbortCause::StmValidation);
  }
  if (last_step_lock_wait_)
    sys_.stats().core(core_).cycles_lock_wait += s.cycles;
  else
    attempt_cycles_ += s.cycles;
  if (s.finished) {
    if (sys_.stm()->read_only(core_))
      return s.cycles + stm_commit_step();  // nothing to lock
    lock_wait_accum_ = 0;
    state_ = State::kStmLockAcquire;
  }
  return s.cycles;
}

sim::Cycle TxExecutor::stm_lock_step() {
  // A concurrent irrevocable execution can stamp (clobber) orecs we hold;
  // bail out before acquiring more rather than validating against its
  // half-applied writes. Observing the glock free here is enough: the
  // stamps an irrevocable execution already finished are ordinary version
  // bumps that commit-time validation checks like any other.
  const auto g = sys_.htm().nontx_load(core_, sys_.glock_addr(), 8);
  attempt_cycles_ += g.latency;
  if (g.value != 0) return g.latency + stm_abort(AbortCause::StmGlock);

  const auto ls = sys_.stm()->lock_next(core_);
  if (ls.status == stm::StmSystem::LockStatus::kBusy) {
    // Bounded spin on another writer's orec: same timestamp policy as the
    // advisory-lock spin. We deliberately do NOT wait while holding locks
    // forever — the timeout breaks writer-writer deadlocks.
    lock_wait_accum_ += ls.latency + kSpinPad;
    sys_.stats().core(core_).cycles_lock_wait +=
        g.latency + ls.latency + kSpinPad;
    if (lock_wait_accum_ > sys_.config().lock_timeout)
      return ls.latency + stm_abort(AbortCause::StmLock);
    return g.latency + ls.latency + kSpinPad;
  }
  attempt_cycles_ += ls.latency;
  if (ls.status == stm::StmSystem::LockStatus::kAllHeld)
    state_ = State::kStmCommit;
  return g.latency + ls.latency;
}

sim::Cycle TxExecutor::stm_commit_step() {
  auto* stm = sys_.stm();
  sim::Cycle cost = 0;
  if (!stm->read_only(core_)) {
    // Writers must not drain their redo log concurrently with an
    // irrevocable execution's plain stores. (Read-only commits need no such
    // check: validation alone proves they serialize before any in-flight
    // irrevocable writer.)
    const auto g = sys_.htm().nontx_load(core_, sys_.glock_addr(), 8);
    cost += g.latency;
    attempt_cycles_ += g.latency;
    if (g.value != 0) return cost + stm_abort(AbortCause::StmGlock);
  }
  const auto r = stm->commit(core_);
  cost += r.latency + kCommitCost;
  attempt_cycles_ += r.latency + kCommitCost;
  if (!r.ok) return cost + stm_abort(AbortCause::StmValidation);

  // Committed: perform deferred frees, keep the attempt's allocations.
  for (sim::Addr a : stm_frees_) sys_.heap().try_dealloc(a);
  stm_frees_.clear();
  stm_allocs_.clear();

  const bool held = sys_.locks().holds_lock(core_);
  const bool contended =
      sys_.locks().contended_while_held(core_) && total_attempts() > 1;
  cost += sys_.locks().release(core_);
  if (sys_.config().scheme != Scheme::kBaseline)
    sys_.policy().on_commit(*ctx_, held, contended, total_attempts() == 1);

  auto& st = sys_.stats().core(core_);
  ++st.commits;
  ++st.stm_commits;
  st.cycles_useful_tx += attempt_cycles_;
  st.tx_instrs += stm_interp_->instrs_executed();
  st.interp_instrs += stm_interp_->instrs_executed();
  instrs_done_ += stm_interp_->instrs_executed();
  st.h_tx_cycles.add(attempt_cycles_);
  st.h_tx_retries.add(total_attempts());
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxCommit,
                    /*tier=*/2, 0, ab_id_, total_attempts()});
  if (auto* p = sys_.prov()) p->on_attempt_commit(core_, sys_.machine().now());
  result_ = stm_interp_->result();
  sys_.htm().publish_host_value(core_, result_);
  if (auto* log = sys_.commit_log())
    log->push_back({sys_.machine().now(), core_,
                    static_cast<std::uint16_t>(ab_id_),
                    static_cast<std::uint16_t>(total_attempts()),
                    /*irrevocable=*/false, /*tier=*/2, result_, args_});
  state_ = State::kFinished;
  return cost;
}

sim::Cycle TxExecutor::stm_abort(AbortCause cause) {
  auto* stm = sys_.stm();
  sim::Cycle cost = kAbortHandlerCost;
  // commit() failure already released + reset; every other path aborts the
  // live attempt here.
  if (stm->active(core_)) cost += stm->abort(core_);
  const sim::Addr line = sim::line_addr(stm->conflict_addr(core_));
  cost += sys_.locks().release(core_);
  spinning_on_alp_ = false;
  // Roll back this attempt's allocations (forward order, mirroring
  // HtmSystem::abort, so the live and replayed allocator streams match);
  // drop deferred frees.
  for (sim::Addr a : stm_allocs_) sys_.heap().try_dealloc(a);
  stm_allocs_.clear();
  stm_frees_.clear();

  auto& st = sys_.stats().core(core_);
  switch (cause) {
    case AbortCause::StmLock: ++st.stm_aborts_lock; break;
    case AbortCause::StmGlock: ++st.stm_aborts_glock; break;
    default: ++st.stm_aborts_validation; break;
  }
  st.cycles_wasted_tx += attempt_cycles_;
  st.interp_instrs += stm_interp_->instrs_executed();
  instrs_done_ += stm_interp_->instrs_executed();

  const bool will_glock = stm_attempts_ >= sys_.config().stm.retries;
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kTxAbort,
                    static_cast<std::uint8_t>(cause), 0, /*aborter=*/0, line});
  if (auto* p = sys_.prov()) {
    p->on_abort_finalize(core_, static_cast<std::uint8_t>(cause), line,
                         /*pc_tag_valid=*/false, /*pc_tag=*/0,
                         /*first_pc=*/0, sys_.heap().alloc_site_for(line),
                         sys_.privacy().private_owner(line),
                         sys_.machine().now(), /*stm_tier=*/true);
    p->on_attempt_abort(core_, total_attempts(), attempt_cycles_, will_glock,
                        sys_.machine().now());
  }
  // Orec conflicts are real data conflicts: train the advisory-lock policy
  // across tiers (the CPC map recorded this attempt's ALP visits, so
  // StaggeredSW resolution works the same as for HTM aborts).
  if (cause != AbortCause::StmGlock) {
    htm::AbortInfo info;
    info.cause = cause;
    info.conflict_line = line;
    resolve_and_train(info);
  }
  if (will_glock) {
    state_ = State::kGlockAcquire;
    return cost;
  }
  const sim::Cycle mean = sys_.config().backoff_base * total_attempts();
  const sim::Cycle delay = sys_.rng(core_).next_below(2 * mean + 1);
  st.cycles_backoff += delay;
  st.h_tx_backoff.add(delay);
  if (auto* t = sys_.trace())
    t->emit(core_, {sys_.machine().now(), obs::EventKind::kBackoff, 0, 0,
                    total_attempts(), delay});
  state_ = State::kStmBeginAttempt;
  return cost + delay;
}

}  // namespace st::runtime
